//! The streaming feed plane: session FSM ingest with hold timers,
//! graceful restart, and resume-exact reconnect (DESIGN.md §14).
//!
//! The paper's monitoring framework tails live BGP feeds; this module
//! is the workspace's receiving end. A [`FeedServer`] listens for
//! framed TCP sessions speaking the [`quicksand_bgp::feed`] protocol
//! and ingests events into per-peer [`FeedSlot`]s; a replay cell
//! consumes a slot through [`FeedSlot::churn_iter`], driving the exact
//! replay loop the batch path uses ([`Scenario::run_month_streamed`]).
//! A [`FeedClient`] streams a [`FeedSource`] into a server, surviving
//! disconnects with seeded decorrelated-jitter backoff and resuming
//! exactly from the server's acknowledged cursor.
//!
//! Session FSM (per peer):
//!
//! ```text
//!            accept          Open valid, Resume sent
//!   Idle ──────────▶ Connect ───────────────────────▶ Established
//!    ▲                  │ bad handshake                    │
//!    │                  ▼ (dead-letter)                    │ hold timer
//!    └──────────────────┴───────◀──────────────────────────┘ expired,
//!        disconnect / reap / eof                             reap
//! ```
//!
//! Robustness discipline:
//!
//! * **Hold timers.** A session that stops producing frames for the
//!   negotiated hold time is *reaped* — closed at a deterministic
//!   cursor (the count of events fully accepted), never mid-event.
//! * **Graceful restart.** The slot retains all accepted state across
//!   disconnects; a consumer keeps draining what arrived and only
//!   gives up ([`QuicksandError::FeedRestartExpired`]) when no session
//!   re-establishes within the restart window.
//! * **Resume-exact reconnect.** The handshake tells the client the
//!   accepted count; the client restarts streaming from that sequence
//!   number. Duplicates are re-acked, gaps are fatal, and the EOF
//!   digest plus a batch re-run ([`month_fnv`]) prove the streamed
//!   month is bitwise identical to the locally generated one.
//! * **Dead letters.** Malformed frames and protocol violations never
//!   poison a slot: the offending session is counted, reported, and
//!   closed; the slot stays valid for the next connection.
//!
//! [`Scenario::run_month_streamed`]: crate::scenario::Scenario::run_month_streamed

use crate::scenario::MonthResult;
use crate::telemetry::{FeedSessionTelemetry, SessionState};
use quicksand_bgp::feed::{FeedEvent, FeedMode, FeedMsg, FeedSource, FnvHasher};
use quicksand_bgp::{mrt, ChurnEvent, ConnChaosPlan, ConnFaultKind, UpdateRecord};
use quicksand_net::{read_frame, FrameDecoder, FrameError, QsResult, QuicksandError};
use quicksand_obs as obs;
use quicksand_obs::Key;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Stage label for feed metrics and events.
pub const STAGE: &str = "feed";

/// How many events the client streams between ack drains.
const ACK_DRAIN_EVERY: u64 = 16;

/// Tuning knobs for the ingest side of the feed plane.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedConfig {
    /// Server-side hold time in wall ms: a session silent longer is
    /// reaped. The effective per-session hold is the minimum of this
    /// and the client's advertised hold.
    pub hold_ms: u64,
    /// Graceful-restart window in wall ms: how long a consumer waits
    /// for a session to (re-)establish before abandoning the feed.
    pub restart_ms: u64,
    /// Send a cumulative ack every this many accepted events (the
    /// final EOF ack is always sent).
    pub ack_every: u64,
    /// Backpressure bound: accepted-but-unconsumed events per slot.
    pub queue_cap: usize,
    /// Poll interval for hold timers, condvar waits, and stop checks.
    pub poll_ms: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            hold_ms: 2000,
            restart_ms: 10_000,
            ack_every: 32,
            queue_cap: 1024,
            poll_ms: 25,
        }
    }
}

/// What happened to a pushed event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The event was new and accepted; the cursor is now this.
    Accepted(u64),
    /// The event was already accepted (a resume overlap); the cursor
    /// is unchanged and should be re-acked.
    Duplicate(u64),
}

#[derive(Debug)]
struct SlotInner {
    /// Every accepted event, in sequence order. Retaining the full
    /// prefix is what makes graceful restart, client resume, and
    /// supervised cell restart all trivially consistent: the slot *is*
    /// the authoritative stream prefix.
    events: Vec<FeedEvent>,
    /// FNV-1a folded over every accepted event's encoding, matched
    /// against the client's EOF digest.
    digest: FnvHasher,
    /// Reused encode buffer for digest folding.
    scratch: Vec<u8>,
    /// Events handed to the consumer so far (backpressure watermark).
    consumed: u64,
    /// Total event count once EOF was accepted.
    eof: Option<u64>,
    /// True while a session is in the Established state.
    established: bool,
    /// Last accept/establishment change — the graceful-restart clock.
    last_change: Instant,
    /// Set once the slot is abandoned; every later call errors typed.
    failed: Option<String>,
    /// Times a producer blocked on the queue bound.
    backpressure_waits: u64,
}

/// Per-peer ingest state shared between the feed server's session
/// threads (producers) and a replay cell (consumer).
#[derive(Debug)]
pub struct FeedSlot {
    cfg: FeedConfig,
    inner: Mutex<SlotInner>,
    cond: Condvar,
}

impl FeedSlot {
    /// An empty slot with the given tuning.
    pub fn new(cfg: FeedConfig) -> FeedSlot {
        FeedSlot {
            cfg,
            inner: Mutex::new(SlotInner {
                events: Vec::new(),
                digest: FnvHasher::new(),
                scratch: Vec::new(),
                consumed: 0,
                eof: None,
                established: false,
                last_change: Instant::now(),
                failed: None,
                backpressure_waits: 0,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn failed_err(failed: &str) -> QuicksandError {
        QuicksandError::FeedProtocol {
            what: "slot",
            detail: failed.to_string(),
        }
    }

    /// Events accepted so far — the cursor a reconnecting client
    /// resumes from.
    pub fn accepted(&self) -> u64 {
        self.lock().events.len() as u64
    }

    /// Events handed to the consumer so far.
    pub fn consumed(&self) -> u64 {
        self.lock().consumed
    }

    /// The total event count, once EOF was accepted.
    pub fn eof_total(&self) -> Option<u64> {
        self.lock().eof
    }

    /// Times a producer blocked on the queue bound.
    pub fn backpressure_waits(&self) -> u64 {
        self.lock().backpressure_waits
    }

    /// True while a session is established on this slot.
    pub fn established(&self) -> bool {
        self.lock().established
    }

    /// Marks a session established (or torn down) and restarts the
    /// graceful-restart clock.
    pub fn set_established(&self, up: bool) {
        let mut g = self.lock();
        g.established = up;
        g.last_change = Instant::now();
        self.cond.notify_all();
    }

    /// Abandons the slot: every later push or consume errors typed.
    pub fn fail(&self, why: String) {
        let mut g = self.lock();
        if g.failed.is_none() {
            g.failed = Some(why);
        }
        self.cond.notify_all();
    }

    /// Offers the event at `seq`. Accepts exactly in-order events,
    /// re-acks duplicates from a resume overlap, and rejects gaps and
    /// post-EOF events typed. Blocks (bounded by `cancel`) while the
    /// consumer is more than `queue_cap` events behind.
    pub fn push_event(&self, seq: u64, event: FeedEvent) -> QsResult<PushOutcome> {
        self.push_event_cancel(seq, event, None)
    }

    pub(crate) fn push_event_cancel(
        &self,
        seq: u64,
        event: FeedEvent,
        cancel: Option<&AtomicBool>,
    ) -> QsResult<PushOutcome> {
        let mut g = self.lock();
        loop {
            if let Some(why) = &g.failed {
                return Err(Self::failed_err(why));
            }
            if let Some(c) = cancel {
                if c.load(Ordering::Relaxed) {
                    return Err(QuicksandError::FeedProtocol {
                        what: "shutdown",
                        detail: "server stopping".into(),
                    });
                }
            }
            let len = g.events.len() as u64;
            if seq < len {
                g.last_change = Instant::now();
                self.cond.notify_all();
                return Ok(PushOutcome::Duplicate(len));
            }
            if seq > len {
                return Err(QuicksandError::FeedProtocol {
                    what: "cursor_gap",
                    detail: format!("event seq {seq}, expected {len}"),
                });
            }
            if g.eof.is_some() {
                return Err(QuicksandError::FeedProtocol {
                    what: "event_after_eof",
                    detail: format!("event seq {seq} after eof"),
                });
            }
            if len - g.consumed >= self.cfg.queue_cap as u64 {
                g.backpressure_waits += 1;
                let (g2, _) = self
                    .cond
                    .wait_timeout(g, Duration::from_millis(self.cfg.poll_ms.max(1)))
                    .unwrap_or_else(|e| e.into_inner());
                g = g2;
                continue;
            }
            let mut scratch = std::mem::take(&mut g.scratch);
            scratch.clear();
            event.encode(&mut scratch)?;
            g.digest.update(&scratch);
            g.scratch = scratch;
            g.events.push(event);
            g.last_change = Instant::now();
            self.cond.notify_all();
            return Ok(PushOutcome::Accepted(len + 1));
        }
    }

    /// Accepts end-of-feed: `total` must equal the accepted count and
    /// `fnv` the folded digest, proving the transport delivered the
    /// identical stream. Idempotent, so a client that reconnects after
    /// streaming everything can resend its EOF. Returns the cursor.
    pub fn set_eof(&self, total: u64, fnv: u64) -> QsResult<u64> {
        let mut g = self.lock();
        if let Some(why) = &g.failed {
            return Err(Self::failed_err(why));
        }
        let len = g.events.len() as u64;
        if total != len {
            return Err(QuicksandError::FeedProtocol {
                what: "eof_total",
                detail: format!("eof claims {total} events, accepted {len}"),
            });
        }
        let ours = g.digest.finish();
        if ours != fnv {
            return Err(QuicksandError::FeedProtocol {
                what: "eof_digest",
                detail: format!("digest {ours:#018x}, eof claims {fnv:#018x}"),
            });
        }
        g.eof = Some(total);
        g.last_change = Instant::now();
        self.cond.notify_all();
        Ok(len)
    }

    /// The consumer side: the churn event at `idx`, blocking until it
    /// arrives. `beat` is invoked once per poll tick while waiting, so
    /// a supervised cell can feed its watchdog. Returns `Ok(None)` at
    /// end of feed, and [`QuicksandError::FeedRestartExpired`] when no
    /// session is established and the restart window has elapsed.
    pub fn next_churn(
        &self,
        idx: u64,
        beat: &mut dyn FnMut(),
    ) -> QsResult<Option<ChurnEvent>> {
        let mut g = self.lock();
        loop {
            if let Some(why) = &g.failed {
                return Err(Self::failed_err(why));
            }
            let len = g.events.len() as u64;
            if idx < len {
                let ev = g.events[idx as usize].clone();
                g.consumed = g.consumed.max(idx + 1);
                self.cond.notify_all();
                return match ev {
                    FeedEvent::Link(ev) => Ok(Some(ev)),
                    FeedEvent::Update(_) => Err(QuicksandError::FeedProtocol {
                        what: "mode",
                        detail: "update record in a churn consumer".into(),
                    }),
                };
            }
            if let Some(total) = g.eof {
                if idx >= total {
                    return Ok(None);
                }
            }
            if !g.established {
                let silent_ms = g.last_change.elapsed().as_millis() as u64;
                if silent_ms > self.cfg.restart_ms {
                    return Err(QuicksandError::FeedRestartExpired {
                        cursor: len,
                        silent_ms,
                    });
                }
            }
            let (g2, _) = self
                .cond
                .wait_timeout(g, Duration::from_millis(self.cfg.poll_ms.max(1)))
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
            beat();
        }
    }

    /// An iterator over the slot's churn events, in the shape
    /// [`Scenario::run_month_streamed`] consumes. `beat` fires once
    /// per poll tick while the iterator is waiting for the feed.
    ///
    /// [`Scenario::run_month_streamed`]: crate::scenario::Scenario::run_month_streamed
    pub fn churn_iter<F: FnMut()>(&self, beat: F) -> ChurnFeedIter<'_, F> {
        ChurnFeedIter {
            slot: self,
            idx: 0,
            beat,
            done: false,
        }
    }

    /// Every accepted MRT-style update record, in order — the sink an
    /// MRT-mode session accumulates into.
    pub fn update_records(&self) -> Vec<UpdateRecord> {
        self.lock()
            .events
            .iter()
            .filter_map(|e| match e {
                FeedEvent::Update(rec) => Some(rec.clone()),
                FeedEvent::Link(_) => None,
            })
            .collect()
    }
}

/// Blocking iterator over a [`FeedSlot`]'s churn events; see
/// [`FeedSlot::churn_iter`].
pub struct ChurnFeedIter<'a, F: FnMut()> {
    slot: &'a FeedSlot,
    idx: u64,
    beat: F,
    done: bool,
}

impl<F: FnMut()> Iterator for ChurnFeedIter<'_, F> {
    type Item = QsResult<ChurnEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.slot.next_churn(self.idx, &mut self.beat) {
            Ok(Some(ev)) => {
                self.idx += 1;
                Some(Ok(ev))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// One peer the server will accept: the session handshake must match
/// the label, mode, and scenario fingerprint, and accepted events land
/// in the bound slot.
#[derive(Clone)]
pub struct FeedBinding {
    /// Peer label the client's `Open` must carry.
    pub peer: String,
    /// What the session carries.
    pub mode: FeedMode,
    /// Scenario `config_hash` the client must match (0 for MRT sinks).
    pub config_hash: u64,
    /// Where accepted events go.
    pub slot: Arc<FeedSlot>,
    /// Session telemetry surfaced on `/metrics`, `/healthz`, `/cells`.
    pub telem: Arc<FeedSessionTelemetry>,
}

impl FeedBinding {
    /// Binds a peer label to a slot and its telemetry.
    pub fn new(
        peer: impl Into<String>,
        mode: FeedMode,
        config_hash: u64,
        slot: Arc<FeedSlot>,
        telem: Arc<FeedSessionTelemetry>,
    ) -> FeedBinding {
        FeedBinding {
            peer: peer.into(),
            mode,
            config_hash,
            slot,
            telem,
        }
    }
}

struct ServerCtx {
    cfg: FeedConfig,
    bindings: Vec<FeedBinding>,
    /// The registry active where [`FeedServer::start`] was called —
    /// session threads record into it explicitly, because thread-local
    /// overrides don't cross thread spawns.
    registry: Arc<obs::Registry>,
    stop: Arc<AtomicBool>,
}

/// A TCP listener ingesting framed feed sessions into bound slots.
/// Each accepted connection runs the session FSM on its own thread;
/// `stop()` (or drop) reaps the accept loop and every session.
pub struct FeedServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FeedServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting sessions against `bindings`.
    pub fn start(
        addr: impl ToSocketAddrs,
        cfg: FeedConfig,
        bindings: Vec<FeedBinding>,
    ) -> io::Result<FeedServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(ServerCtx {
            cfg,
            bindings,
            registry: obs::metrics(),
            stop: stop.clone(),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let sessions = sessions.clone();
            thread::Builder::new()
                .name("feed-accept".into())
                .spawn(move || accept_loop(&listener, &ctx, &sessions))?
        };
        Ok(FeedServer {
            addr: local,
            stop,
            accept: Some(accept),
            sessions,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, reaps every session thread, and returns once
    /// all of them exited. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self.sessions.lock().unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FeedServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<ServerCtx>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut n = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if ctx.stop.load(Ordering::Relaxed) {
            return;
        }
        let session_ctx = ctx.clone();
        let spawned = thread::Builder::new()
            .name(format!("feed-session-{n}"))
            .spawn(move || run_session(stream, &session_ctx));
        n += 1;
        if let Ok(h) = spawned {
            sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(h);
        }
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn send_msg(stream: &mut TcpStream, msg: &FeedMsg) -> Result<(), ()> {
    let frame = msg.to_frame().map_err(|_| ())?;
    frame.write_to(stream).map_err(|_| ())
}

/// Counts and reports a malformed or protocol-violating session
/// without poisoning the bound slot.
fn dead_letter(
    ctx: &ServerCtx,
    telem: Option<&FeedSessionTelemetry>,
    peer: &str,
    detail: String,
) {
    ctx.registry.incr(Key::stage(STAGE, "dead_letters"), 1);
    if let Some(t) = telem {
        t.on_dead_letter();
    }
    if obs::enabled(obs::Level::Warn) {
        obs::emit(obs::Event::new(
            obs::Level::Warn,
            STAGE,
            "dead-letter",
            format!("peer {peer}: {detail}"),
        ));
    }
}

enum Close {
    Stop,
    Reap,
    Disconnect,
    DeadLetter,
    Eof,
}

fn run_session(mut stream: TcpStream, ctx: &ServerCtx) {
    let poll = Duration::from_millis(ctx.cfg.poll_ms.max(1));
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut dec = FrameDecoder::new();

    // Idle → Connect: the Open frame must arrive within the server's
    // own hold time.
    let deadline = Instant::now() + Duration::from_millis(ctx.cfg.hold_ms.max(1));
    let open = loop {
        match read_frame(&mut stream, &mut dec) {
            Ok(f) => break f,
            Err(FrameError::Io(e)) if would_block(&e) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    return;
                }
                if Instant::now() >= deadline {
                    ctx.registry.incr(Key::stage(STAGE, "handshake_timeouts"), 1);
                    return;
                }
            }
            Err(e) => {
                dead_letter(ctx, None, "?", format!("handshake frame: {e}"));
                return;
            }
        }
    };
    let (peer, mode, config_hash, client_hold) = match FeedMsg::from_frame(&open) {
        Ok(FeedMsg::Open {
            peer,
            mode,
            config_hash,
            hold_ms,
        }) => (peer, mode, config_hash, hold_ms),
        Ok(other) => {
            dead_letter(ctx, None, "?", format!("expected open, got {other:?}"));
            return;
        }
        Err(e) => {
            dead_letter(ctx, None, "?", format!("handshake: {e}"));
            return;
        }
    };
    let Some(binding) = ctx.bindings.iter().find(|b| b.peer == peer) else {
        dead_letter(ctx, None, &peer, format!("unknown peer {peer:?}"));
        return;
    };
    let telem = &binding.telem;
    if binding.mode != mode {
        dead_letter(
            ctx,
            Some(telem),
            &peer,
            format!("mode {mode:?}, bound {:?}", binding.mode),
        );
        return;
    }
    if binding.config_hash != config_hash {
        dead_letter(
            ctx,
            Some(telem),
            &peer,
            format!(
                "config_hash {config_hash:#018x}, bound {:#018x}",
                binding.config_hash
            ),
        );
        return;
    }

    // Connect → Established: negotiate the hold timer and tell the
    // client where to resume.
    let hold_ms = if client_hold == 0 {
        ctx.cfg.hold_ms
    } else {
        ctx.cfg.hold_ms.min(client_hold)
    }
    .max(1);
    let hold = Duration::from_millis(hold_ms);
    let slot = &binding.slot;
    telem.set_hold_ms(hold_ms);
    telem.on_connect();
    telem.set_state(SessionState::Connect);
    ctx.registry.incr(Key::stage(STAGE, "connects"), 1);

    let mut acked = slot.accepted();
    if send_msg(&mut stream, &FeedMsg::Resume { cursor: acked }).is_err() {
        telem.set_state(SessionState::Idle);
        return;
    }
    telem.set_state(SessionState::Established);
    telem.set_acked(acked);
    slot.set_established(true);
    if obs::enabled(obs::Level::Info) {
        obs::emit(
            obs::Event::new(
                obs::Level::Info,
                STAGE,
                "session-open",
                format!("peer {peer} established, resuming at {acked}"),
            )
            .with("cursor", acked),
        );
    }

    let mut last_frame = Instant::now();
    let reason = loop {
        if ctx.stop.load(Ordering::Relaxed) {
            break Close::Stop;
        }
        let frame = match read_frame(&mut stream, &mut dec) {
            Ok(f) => f,
            Err(FrameError::Io(e)) if would_block(&e) => {
                if last_frame.elapsed() >= hold {
                    // Reap at a deterministic cursor: the count of
                    // events fully accepted, never mid-event.
                    let cursor = slot.accepted();
                    telem.on_reap(cursor);
                    ctx.registry.incr(Key::stage(STAGE, "reaps"), 1);
                    if obs::enabled(obs::Level::Warn) {
                        obs::emit(
                            obs::Event::new(
                                obs::Level::Warn,
                                STAGE,
                                "session-reap",
                                format!(
                                    "peer {peer} silent past {hold_ms}ms hold, \
                                     reaped at cursor {cursor}"
                                ),
                            )
                            .with("cursor", cursor),
                        );
                    }
                    break Close::Reap;
                }
                continue;
            }
            Err(FrameError::Io(_)) => break Close::Disconnect,
            Err(FrameError::Truncated("eof before frame")) => {
                // Clean close between frames: an orderly disconnect,
                // not a malformed stream.
                break Close::Disconnect;
            }
            Err(e) => {
                dead_letter(ctx, Some(telem), &peer, format!("frame: {e}"));
                break Close::DeadLetter;
            }
        };
        last_frame = Instant::now();
        telem.touch();
        let msg = match FeedMsg::from_frame(&frame) {
            Ok(m) => m,
            Err(e) => {
                dead_letter(ctx, Some(telem), &peer, e.to_string());
                break Close::DeadLetter;
            }
        };
        match msg {
            FeedMsg::Event { seq, event } => {
                let kind_ok = matches!(
                    (&event, binding.mode),
                    (FeedEvent::Link(_), FeedMode::Churn)
                        | (FeedEvent::Update(_), FeedMode::Mrt)
                );
                if !kind_ok {
                    dead_letter(
                        ctx,
                        Some(telem),
                        &peer,
                        format!("event kind mismatches {:?} session", binding.mode),
                    );
                    break Close::DeadLetter;
                }
                match slot.push_event_cancel(seq, event, Some(&ctx.stop)) {
                    Ok(PushOutcome::Accepted(cursor)) => {
                        ctx.registry.incr(Key::stage(STAGE, "events"), 1);
                        telem.set_acked(cursor);
                        if cursor - acked >= ctx.cfg.ack_every.max(1) {
                            if send_msg(&mut stream, &FeedMsg::Ack { cursor }).is_err() {
                                break Close::Disconnect;
                            }
                            acked = cursor;
                        }
                    }
                    Ok(PushOutcome::Duplicate(cursor)) => {
                        // Resume overlap: harmless, re-ack so the
                        // client's cursor catches up immediately.
                        ctx.registry.incr(Key::stage(STAGE, "duplicates"), 1);
                        if send_msg(&mut stream, &FeedMsg::Ack { cursor }).is_err() {
                            break Close::Disconnect;
                        }
                        acked = cursor;
                    }
                    Err(e) => {
                        dead_letter(ctx, Some(telem), &peer, e.to_string());
                        break Close::DeadLetter;
                    }
                }
            }
            FeedMsg::Keepalive { .. } => {
                ctx.registry.incr(Key::stage(STAGE, "keepalives"), 1);
            }
            FeedMsg::Eof { total, fnv } => match slot.set_eof(total, fnv) {
                Ok(cursor) => {
                    telem.set_acked(cursor);
                    let _ = send_msg(&mut stream, &FeedMsg::Ack { cursor });
                    telem.set_eof();
                    ctx.registry.incr(Key::stage(STAGE, "eof_ok"), 1);
                    if obs::enabled(obs::Level::Info) {
                        obs::emit(
                            obs::Event::new(
                                obs::Level::Info,
                                STAGE,
                                "session-eof",
                                format!("peer {peer} eof at {cursor}, digest verified"),
                            )
                            .with("cursor", cursor),
                        );
                    }
                    break Close::Eof;
                }
                Err(e) => {
                    ctx.registry.incr(Key::stage(STAGE, "eof_mismatch"), 1);
                    dead_letter(ctx, Some(telem), &peer, e.to_string());
                    break Close::DeadLetter;
                }
            },
            FeedMsg::Open { .. } | FeedMsg::Resume { .. } | FeedMsg::Ack { .. } => {
                dead_letter(
                    ctx,
                    Some(telem),
                    &peer,
                    "client sent a server-side message".into(),
                );
                break Close::DeadLetter;
            }
        }
    };
    // Established → Idle. Accepted state stays in the slot — graceful
    // restart means a reconnect resumes exactly where this left off.
    slot.set_established(false);
    telem.set_state(SessionState::Idle);
    if matches!(reason, Close::Disconnect) {
        ctx.registry.incr(Key::stage(STAGE, "disconnects"), 1);
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seeded decorrelated-jitter reconnect backoff: deterministic per
/// seed (so reconnect timelines replay), spread per attempt (so a
/// fleet of clients doesn't thunder back in lockstep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Minimum backoff, wall ms.
    pub base_ms: u64,
    /// Maximum backoff, wall ms.
    pub cap_ms: u64,
    /// Connection attempts before the client gives up with
    /// [`QuicksandError::FeedLost`].
    pub max_attempts: u32,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            base_ms: 25,
            cap_ms: 400,
            max_attempts: 8,
            seed: 0xFEED_BACC,
        }
    }
}

impl ReconnectPolicy {
    /// The backoff before retry number `attempt` (0-based), in wall
    /// ms. Decorrelated jitter: each delay is drawn from
    /// `[base, min(cap, 3 · previous)]`, chained from the seed so the
    /// whole timeline is a pure function of `(seed, attempt)`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = self.base_ms.max(1);
        let cap = self.cap_ms.max(base);
        let mut prev = base;
        for k in 0..=attempt {
            let h = splitmix64(self.seed ^ splitmix64(u64::from(k) ^ 0xFEED));
            let hi = prev.saturating_mul(3).clamp(base, cap);
            prev = base + h % (hi - base + 1);
        }
        prev
    }
}

/// What a [`FeedClient::stream`] call did, across every attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Event frames sent (resume overlaps counted again).
    pub sent: u64,
    /// Highest cumulative ack observed.
    pub acked: u64,
    /// Sessions successfully connected.
    pub connects: u32,
    /// Scripted connection faults fired.
    pub faults_fired: u64,
}

enum AttemptError {
    /// Transport-level: back off and reconnect.
    Retry(String),
    /// Protocol-level: no reconnect can fix this.
    Fatal(QuicksandError),
}

/// Streams a [`FeedSource`] into a [`FeedServer`], resuming exactly
/// from the server's cursor after every disconnect — including
/// scripted ones from a [`ConnChaosPlan`].
#[derive(Clone, Debug)]
pub struct FeedClient {
    /// Server address.
    pub addr: SocketAddr,
    /// Peer label to open as (must match a server binding).
    pub peer: String,
    /// Scenario fingerprint to open with (0 for MRT sinks).
    pub config_hash: u64,
    /// Hold time advertised in the handshake, wall ms.
    pub hold_ms: u64,
    /// Reconnect backoff and budget.
    pub reconnect: ReconnectPolicy,
    /// Scripted connection faults (empty for a clean stream).
    pub chaos: ConnChaosPlan,
}

impl FeedClient {
    /// A client with default hold, backoff, and no scripted faults.
    pub fn new(addr: SocketAddr, peer: impl Into<String>, config_hash: u64) -> FeedClient {
        FeedClient {
            addr,
            peer: peer.into(),
            config_hash,
            hold_ms: FeedConfig::default().hold_ms,
            reconnect: ReconnectPolicy::default(),
            chaos: ConnChaosPlan::none(),
        }
    }

    /// Streams the whole source, reconnecting through transport
    /// faults, until the server acknowledges the EOF digest. Errors
    /// typed: [`QuicksandError::FeedLost`] when the reconnect budget
    /// runs out, [`QuicksandError::FeedProtocol`] when the server's
    /// answers violate the protocol.
    pub fn stream(&self, source: &dyn FeedSource) -> QsResult<StreamReport> {
        let total = source.len();
        let fnv = source.digest()?;
        let mut report = StreamReport::default();
        let mut fired = 0usize;
        let mut attempts: u32 = 0;
        let mut last_err = String::from("no attempt made");
        loop {
            if attempts >= self.reconnect.max_attempts.max(1) {
                return Err(QuicksandError::FeedLost {
                    attempts,
                    detail: last_err,
                });
            }
            if attempts > 0 {
                obs::incr(STAGE, "client_reconnects", 1);
                thread::sleep(Duration::from_millis(
                    self.reconnect.backoff_ms(attempts - 1),
                ));
            }
            attempts += 1;
            match self.attempt(source, total, fnv, &mut report, &mut fired) {
                Ok(()) => return Ok(report),
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Retry(detail)) => last_err = detail,
            }
        }
    }

    fn attempt(
        &self,
        source: &dyn FeedSource,
        total: u64,
        fnv: u64,
        report: &mut StreamReport,
        fired: &mut usize,
    ) -> Result<(), AttemptError> {
        let retry = AttemptError::Retry;
        let mut stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(2))
            .map_err(|e| retry(format!("connect: {e}")))?;
        stream.set_nodelay(true).ok();
        report.connects += 1;
        let mut dec = FrameDecoder::new();

        // Handshake: Open, then block (bounded by our hold) on Resume.
        stream
            .set_read_timeout(Some(Duration::from_millis(self.hold_ms.max(1))))
            .ok();
        send_client(
            &mut stream,
            &FeedMsg::Open {
                peer: self.peer.clone(),
                mode: source.mode(),
                config_hash: self.config_hash,
                hold_ms: self.hold_ms,
            },
        )?;
        let cursor = match read_frame(&mut stream, &mut dec) {
            Ok(f) => match FeedMsg::from_frame(&f) {
                Ok(FeedMsg::Resume { cursor }) => cursor,
                Ok(other) => {
                    return Err(AttemptError::Fatal(QuicksandError::FeedProtocol {
                        what: "handshake",
                        detail: format!("expected resume, got {other:?}"),
                    }))
                }
                Err(e) => return Err(AttemptError::Fatal(e)),
            },
            Err(e) => return Err(retry(format!("awaiting resume: {e}"))),
        };
        if cursor > total {
            return Err(AttemptError::Fatal(QuicksandError::FeedProtocol {
                what: "resume",
                detail: format!("server cursor {cursor} beyond feed of {total}"),
            }));
        }

        // Stream from the server's cursor. Reads only drain acks now,
        // so a short timeout keeps the send path busy. (Keeping the
        // socket blocking for writes matters: a non-blocking write
        // could tear a frame in half.)
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .ok();
        for seq in cursor..total {
            if let Some(fault) = self.chaos.fire(*fired, seq) {
                *fired += 1;
                report.faults_fired += 1;
                match fault.kind {
                    ConnFaultKind::Disconnect => {
                        return Err(retry(format!("chaos disconnect at seq {seq}")));
                    }
                    ConnFaultKind::TruncateFrame => {
                        let event = source_event(source, seq)?;
                        let frame = FeedMsg::Event { seq, event }
                            .to_frame()
                            .map_err(AttemptError::Fatal)?;
                        let bytes = frame
                            .encode()
                            .map_err(|e| retry(format!("encode: {e}")))?;
                        let cut = (bytes.len() / 2).max(1);
                        let _ = stream.write_all(&bytes[..cut]);
                        let _ = stream.flush();
                        return Err(retry(format!("chaos truncated frame at seq {seq}")));
                    }
                    ConnFaultKind::Stall { ms } => {
                        thread::sleep(Duration::from_millis(ms));
                    }
                }
            }
            let event = source_event(source, seq)?;
            send_client(&mut stream, &FeedMsg::Event { seq, event })?;
            report.sent += 1;
            if (seq - cursor + 1) % ACK_DRAIN_EVERY == 0 {
                drain_acks(&mut stream, &mut dec, report);
            }
        }

        // EOF, then wait for the cumulative ack to reach the total,
        // keeping the session alive with keepalives.
        send_client(&mut stream, &FeedMsg::Eof { total, fnv })?;
        stream
            .set_read_timeout(Some(Duration::from_millis((self.hold_ms / 4).max(1))))
            .ok();
        let deadline = Instant::now()
            + Duration::from_millis(self.hold_ms.saturating_mul(2).max(1));
        loop {
            match read_frame(&mut stream, &mut dec) {
                Ok(f) => match FeedMsg::from_frame(&f) {
                    Ok(FeedMsg::Ack { cursor }) => {
                        report.acked = report.acked.max(cursor);
                        if cursor >= total {
                            return Ok(());
                        }
                    }
                    Ok(other) => {
                        return Err(retry(format!(
                            "awaiting final ack, got {other:?}"
                        )))
                    }
                    Err(e) => return Err(retry(format!("awaiting final ack: {e}"))),
                },
                Err(FrameError::Io(e)) if would_block(&e) => {
                    if Instant::now() >= deadline {
                        return Err(retry("final ack timeout".into()));
                    }
                    send_client(&mut stream, &FeedMsg::Keepalive { at: total })?;
                }
                Err(e) => return Err(retry(format!("awaiting final ack: {e}"))),
            }
        }
    }
}

fn source_event(source: &dyn FeedSource, seq: u64) -> Result<FeedEvent, AttemptError> {
    source
        .get(seq)
        .ok_or_else(|| {
            AttemptError::Fatal(QuicksandError::FeedProtocol {
                what: "source",
                detail: format!("event {seq} missing from source"),
            })
        })
}

fn send_client(stream: &mut TcpStream, msg: &FeedMsg) -> Result<(), AttemptError> {
    let frame = msg.to_frame().map_err(AttemptError::Fatal)?;
    frame
        .write_to(stream)
        .map_err(|e| AttemptError::Retry(format!("send: {e}")))
}

/// Opportunistically drains pending acks (the socket's read timeout
/// is ~1ms here, so an empty pipe costs one tick).
fn drain_acks(stream: &mut TcpStream, dec: &mut FrameDecoder, report: &mut StreamReport) {
    loop {
        match read_frame(stream, dec) {
            Ok(f) => {
                if let Ok(FeedMsg::Ack { cursor }) = FeedMsg::from_frame(&f) {
                    report.acked = report.acked.max(cursor);
                }
            }
            Err(_) => return,
        }
    }
}

/// The workspace's month-identity fingerprint: FNV-1a over the raw
/// update log's QSMRT001 encoding. Two [`MonthResult`]s with equal
/// fingerprints replayed the same churn against the same collectors —
/// the bit `repro` reports to prove a streamed run equals its batch
/// twin.
pub fn month_fnv(month: &MonthResult) -> u64 {
    let mut bytes = Vec::new();
    mrt::write_log(&month.raw, &mut bytes).expect("writing to a Vec cannot fail");
    quicksand_bgp::feed::fnv64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_bgp::feed::ChurnFeedSource;
    use quicksand_bgp::{LinkChange, Route, SessionId, UpdateMessage};
    use quicksand_net::{Asn, Ipv4Prefix, SimTime};
    use quicksand_obs::Registry;

    fn link(at_s: u64, a: u32, b: u32, up: bool) -> ChurnEvent {
        ChurnEvent {
            at: SimTime::from_secs(at_s),
            change: LinkChange {
                a: Asn(a),
                b: Asn(b),
                up,
            },
        }
    }

    fn events(n: u64) -> Vec<ChurnEvent> {
        (0..n).map(|i| link(i, 1, 2, i % 2 == 0)).collect()
    }

    fn quick_cfg() -> FeedConfig {
        FeedConfig {
            hold_ms: 500,
            restart_ms: 2000,
            ack_every: 8,
            queue_cap: 1024,
            poll_ms: 2,
        }
    }

    fn telem(peer: &str) -> Arc<FeedSessionTelemetry> {
        Arc::new(FeedSessionTelemetry::new(None, peer.to_string(), 500))
    }

    fn digest_of(evs: &[ChurnEvent]) -> u64 {
        ChurnFeedSource::new(evs.to_vec()).digest().unwrap()
    }

    /// Spawns a consumer draining the slot's churn iterator to
    /// completion (or error).
    fn spawn_consumer(
        slot: Arc<FeedSlot>,
    ) -> thread::JoinHandle<QsResult<Vec<ChurnEvent>>> {
        thread::spawn(move || {
            let mut got = Vec::new();
            for r in slot.churn_iter(|| {}) {
                got.push(r?);
            }
            Ok(got)
        })
    }

    #[test]
    fn slot_orders_duplicates_and_gaps() {
        let slot = FeedSlot::new(quick_cfg());
        let ev = |i| FeedEvent::Link(link(i, 1, 2, true));
        assert_eq!(slot.push_event(0, ev(0)).unwrap(), PushOutcome::Accepted(1));
        assert_eq!(
            slot.push_event(0, ev(0)).unwrap(),
            PushOutcome::Duplicate(1),
            "resume overlap is re-acked, not an error"
        );
        match slot.push_event(2, ev(2)) {
            Err(QuicksandError::FeedProtocol { what, .. }) => assert_eq!(what, "cursor_gap"),
            other => panic!("expected cursor_gap, got {other:?}"),
        }
        assert_eq!(slot.push_event(1, ev(1)).unwrap(), PushOutcome::Accepted(2));
        assert_eq!(slot.accepted(), 2);
    }

    #[test]
    fn slot_eof_validates_total_and_digest() {
        let evs = events(2);
        let slot = FeedSlot::new(quick_cfg());
        for (i, ev) in evs.iter().enumerate() {
            slot.push_event(i as u64, FeedEvent::Link(*ev)).unwrap();
        }
        let good = digest_of(&evs);
        assert!(matches!(
            slot.set_eof(3, good),
            Err(QuicksandError::FeedProtocol { what: "eof_total", .. })
        ));
        assert!(matches!(
            slot.set_eof(2, good ^ 1),
            Err(QuicksandError::FeedProtocol { what: "eof_digest", .. })
        ));
        assert_eq!(slot.set_eof(2, good).unwrap(), 2);
        // A reconnecting client may resend its EOF: idempotent.
        assert_eq!(slot.set_eof(2, good).unwrap(), 2);
        assert!(matches!(
            slot.push_event(2, FeedEvent::Link(link(9, 1, 2, true))),
            Err(QuicksandError::FeedProtocol { what: "event_after_eof", .. })
        ));
        assert_eq!(slot.eof_total(), Some(2));
    }

    #[test]
    fn slot_backpressure_blocks_and_counts() {
        let evs = events(5);
        let slot = Arc::new(FeedSlot::new(FeedConfig {
            queue_cap: 2,
            ..quick_cfg()
        }));
        let consumer = {
            let slot = slot.clone();
            thread::spawn(move || {
                // Let the producer hit the bound before draining.
                thread::sleep(Duration::from_millis(30));
                let mut got = Vec::new();
                for r in slot.churn_iter(|| {}) {
                    got.push(r.unwrap());
                }
                got
            })
        };
        for (i, ev) in evs.iter().enumerate() {
            slot.push_event(i as u64, FeedEvent::Link(*ev)).unwrap();
        }
        slot.set_eof(5, digest_of(&evs)).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, evs);
        assert!(
            slot.backpressure_waits() > 0,
            "producer should have blocked on the 2-deep queue"
        );
    }

    #[test]
    fn churn_iter_streams_in_order_with_beats() {
        let evs = events(3);
        let slot = Arc::new(FeedSlot::new(quick_cfg()));
        let producer = {
            let slot = slot.clone();
            let evs = evs.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(15));
                for (i, ev) in evs.iter().enumerate() {
                    slot.push_event(i as u64, FeedEvent::Link(*ev)).unwrap();
                }
                slot.set_eof(3, digest_of(&evs)).unwrap();
            })
        };
        let mut beats = 0u64;
        let got: Vec<ChurnEvent> = slot
            .churn_iter(|| beats += 1)
            .map(|r| r.unwrap())
            .collect();
        producer.join().unwrap();
        assert_eq!(got, evs);
        assert!(beats > 0, "waiting ticks should have fed the watchdog beat");
        assert_eq!(slot.consumed(), 3);
    }

    #[test]
    fn graceful_restart_expiry_is_typed() {
        let slot = FeedSlot::new(FeedConfig {
            restart_ms: 10,
            poll_ms: 1,
            ..quick_cfg()
        });
        // Never established, nothing arriving: the consumer gives up
        // once the restart window elapses.
        match slot.next_churn(0, &mut || {}) {
            Err(QuicksandError::FeedRestartExpired { cursor, silent_ms }) => {
                assert_eq!(cursor, 0);
                assert!(silent_ms > 10);
            }
            other => panic!("expected FeedRestartExpired, got {other:?}"),
        }
        // An empty feed with a verified EOF ends cleanly instead.
        let slot = FeedSlot::new(quick_cfg());
        slot.set_eof(0, FnvHasher::new().finish()).unwrap();
        assert!(slot.next_churn(0, &mut || {}).unwrap().is_none());
    }

    #[test]
    fn reconnect_backoff_is_deterministic_and_bounded() {
        let p = ReconnectPolicy::default();
        let timeline: Vec<u64> = (0..6).map(|a| p.backoff_ms(a)).collect();
        assert_eq!(
            timeline,
            (0..6).map(|a| p.backoff_ms(a)).collect::<Vec<u64>>(),
            "backoff is a pure function of (seed, attempt)"
        );
        for &ms in &timeline {
            assert!(ms >= p.base_ms && ms <= p.cap_ms, "{ms} out of bounds");
        }
        let other = ReconnectPolicy {
            seed: 7,
            ..ReconnectPolicy::default()
        };
        assert_ne!(
            timeline,
            (0..6).map(|a| other.backoff_ms(a)).collect::<Vec<u64>>(),
            "different seeds should jitter differently"
        );
    }

    struct World {
        reg: Arc<Registry>,
        server: FeedServer,
        slot: Arc<FeedSlot>,
        telem: Arc<FeedSessionTelemetry>,
    }

    fn loopback(cfg: FeedConfig, mode: FeedMode, config_hash: u64) -> World {
        let reg = Arc::new(Registry::new());
        let slot = Arc::new(FeedSlot::new(cfg.clone()));
        let t = telem("cell-0");
        let binding = FeedBinding::new("cell-0", mode, config_hash, slot.clone(), t.clone());
        let server = obs::with_metrics(reg.clone(), || {
            FeedServer::start("127.0.0.1:0", cfg, vec![binding]).unwrap()
        });
        World {
            reg,
            server,
            slot,
            telem: t,
        }
    }

    fn quick_client(w: &World, config_hash: u64) -> FeedClient {
        FeedClient {
            addr: w.server.local_addr(),
            peer: "cell-0".into(),
            config_hash,
            hold_ms: 500,
            reconnect: ReconnectPolicy {
                base_ms: 1,
                cap_ms: 4,
                max_attempts: 8,
                seed: 0xFEED,
            },
            chaos: ConnChaosPlan::none(),
        }
    }

    #[test]
    fn loopback_happy_path_streams_and_acks() {
        let evs = events(40);
        let mut w = loopback(quick_cfg(), FeedMode::Churn, 0xC0FFEE);
        let consumer = spawn_consumer(w.slot.clone());
        let report = quick_client(&w, 0xC0FFEE)
            .stream(&ChurnFeedSource::new(evs.clone()))
            .unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), evs);
        w.server.stop();
        assert_eq!(report.sent, 40);
        assert_eq!(report.acked, 40);
        assert_eq!(report.connects, 1);
        assert_eq!(report.faults_fired, 0);
        assert!(w.telem.eof());
        assert_eq!(w.telem.acked(), 40);
        assert_eq!(w.reg.counter_value(Key::stage(STAGE, "eof_ok")), 1);
        assert_eq!(w.reg.counter_value(Key::stage(STAGE, "dead_letters")), 0);
    }

    #[test]
    fn loopback_disconnect_resumes_exactly_at_the_acked_cursor() {
        let evs = events(40);
        let mut w = loopback(quick_cfg(), FeedMode::Churn, 7);
        let consumer = spawn_consumer(w.slot.clone());
        let mut client = quick_client(&w, 7);
        client.chaos = ConnChaosPlan::single(13, ConnFaultKind::Disconnect);
        let report = client.stream(&ChurnFeedSource::new(evs.clone())).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), evs, "resume is exact");
        w.server.stop();
        assert_eq!(report.connects, 2, "one disconnect, one reconnect");
        assert_eq!(report.faults_fired, 1);
        assert_eq!(w.telem.connects(), 2);
        assert!(w.telem.eof());
        assert_eq!(w.reg.counter_value(Key::stage(STAGE, "eof_ok")), 1);
        assert_eq!(w.reg.counter_value(Key::stage(STAGE, "disconnects")), 1);
    }

    #[test]
    fn loopback_truncated_frame_dead_letters_then_resumes() {
        let evs = events(24);
        let mut w = loopback(quick_cfg(), FeedMode::Churn, 7);
        let consumer = spawn_consumer(w.slot.clone());
        let mut client = quick_client(&w, 7);
        client.chaos = ConnChaosPlan::single(7, ConnFaultKind::TruncateFrame);
        let report = client.stream(&ChurnFeedSource::new(evs.clone())).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), evs);
        w.server.stop();
        assert_eq!(report.connects, 2);
        assert!(
            w.reg.counter_value(Key::stage(STAGE, "dead_letters")) >= 1,
            "the half-frame must be dead-lettered"
        );
        assert!(w.telem.dead_letters() >= 1);
        assert!(w.telem.eof());
    }

    #[test]
    fn loopback_stalled_peer_is_reaped_at_a_deterministic_cursor() {
        let w = loopback(
            FeedConfig {
                hold_ms: 1000,
                poll_ms: 2,
                ..quick_cfg()
            },
            FeedMode::Churn,
            7,
        );
        // A raw client that opens with a 40ms hold, streams 3 events,
        // then goes silent: the negotiated hold is min(1000, 40).
        let mut stream = TcpStream::connect(w.server.local_addr()).unwrap();
        FeedMsg::Open {
            peer: "cell-0".into(),
            mode: FeedMode::Churn,
            config_hash: 7,
            hold_ms: 40,
        }
        .to_frame()
        .unwrap()
        .write_to(&mut stream)
        .unwrap();
        for (i, ev) in events(3).iter().enumerate() {
            FeedMsg::Event {
                seq: i as u64,
                event: FeedEvent::Link(*ev),
            }
            .to_frame()
            .unwrap()
            .write_to(&mut stream)
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while w.telem.reaps() == 0 {
            assert!(Instant::now() < deadline, "peer was never reaped");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(w.telem.reaps(), 1);
        assert_eq!(
            w.telem.last_reap_cursor(),
            3,
            "reaped exactly at the accepted-event cursor"
        );
        assert_eq!(w.telem.state(), SessionState::Idle);
        assert_eq!(w.reg.counter_value(Key::stage(STAGE, "reaps")), 1);
        assert_eq!(w.slot.accepted(), 3, "accepted state is retained after a reap");
    }

    #[test]
    fn unknown_peer_and_config_mismatch_exhaust_the_client() {
        let evs = events(4);
        let w = loopback(quick_cfg(), FeedMode::Churn, 7);
        let mut client = quick_client(&w, 7);
        client.peer = "nobody".into();
        client.reconnect.max_attempts = 2;
        match client.stream(&ChurnFeedSource::new(evs.clone())) {
            Err(QuicksandError::FeedLost { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected FeedLost, got {other:?}"),
        }
        let mut client = quick_client(&w, 999);
        client.reconnect.max_attempts = 1;
        assert!(matches!(
            client.stream(&ChurnFeedSource::new(evs)),
            Err(QuicksandError::FeedLost { attempts: 1, .. })
        ));
        assert!(w.reg.counter_value(Key::stage(STAGE, "dead_letters")) >= 3);
        assert_eq!(w.slot.accepted(), 0);
    }

    #[test]
    fn mrt_mode_accumulates_update_records_identically() {
        let prefix: Ipv4Prefix = "78.46.0.0/15".parse().unwrap();
        let records: Vec<UpdateRecord> = (0..5)
            .map(|i| UpdateRecord {
                at: SimTime::from_secs(i),
                session: SessionId(2),
                msg: UpdateMessage::Announce(Route {
                    prefix,
                    as_path: [Asn(3356), Asn(24940)].into_iter().collect(),
                    communities: Default::default(),
                }),
            })
            .collect();
        let mut w = loopback(quick_cfg(), FeedMode::Mrt, 0);
        let source = quicksand_bgp::MrtFeedSource::new(records.clone());
        let report = quick_client(&w, 0).stream(&source).unwrap();
        w.server.stop();
        assert_eq!(report.sent, 5);
        assert_eq!(
            w.slot.update_records(),
            records,
            "streamed records re-assemble byte-identically"
        );
        assert!(w.telem.eof());
    }

    #[test]
    fn chaos_stall_fires_without_breaking_identity() {
        let evs = events(20);
        let mut w = loopback(quick_cfg(), FeedMode::Churn, 7);
        let consumer = spawn_consumer(w.slot.clone());
        let mut client = quick_client(&w, 7);
        client.chaos = ConnChaosPlan::single(5, ConnFaultKind::Stall { ms: 10 });
        let report = client.stream(&ChurnFeedSource::new(evs.clone())).unwrap();
        assert_eq!(consumer.join().unwrap().unwrap(), evs);
        w.server.stop();
        assert_eq!(report.faults_fired, 1);
        assert_eq!(report.connects, 1, "a sub-hold stall must not drop the session");
    }

    #[test]
    fn month_fnv_is_stable_and_content_sensitive() {
        let (_, month) = crate::testworld::get();
        assert_eq!(month_fnv(month), month_fnv(month));
        let mut bytes = Vec::new();
        mrt::write_log(&month.raw, &mut bytes).unwrap();
        assert_eq!(
            month_fnv(month),
            quicksand_bgp::feed::fnv64(&bytes),
            "the fingerprint is the raw log's QSMRT001 digest"
        );
        let truncated = quicksand_bgp::UpdateLog {
            records: month.raw.records[..month.raw.records.len() - 1].to_vec(),
        };
        let mut short_bytes = Vec::new();
        mrt::write_log(&truncated, &mut short_bytes).unwrap();
        assert_ne!(month_fnv(month), quicksand_bgp::feed::fnv64(&short_bytes));
    }
}
