//! The §3.1 analytical model of anonymity degradation over time.
//!
//! "Let us suppose that the probability of any AS being malicious is
//! `f`, and that the set of malicious ASes collude. Also, let us suppose
//! that there are `n` AS-level paths between a client and a particular
//! guard relay comprising `x` distinct ASes. Then, over time, the
//! adversary's probability of observing the client's communication with
//! the guard approaches `1 − (1 − f)^x` … The average probability of an
//! adversary observing communications between a client and any of the
//! `l` guard relays is computed as `1 − (1 − f)^(l·x)`."
//!
//! Besides the closed forms, this module provides the end-to-end variant
//! (entry *and* exit segments must both be observed, with possibly
//! overlapping AS sets) and a Monte-Carlo validator used by tests and
//! the `model` experiment.

use quicksand_net::Asn;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// `1 − (1 − f)^x`: probability at least one of `x` distinct ASes is
/// malicious.
///
/// # Panics
/// Panics if `f` is outside `[0, 1]`.
pub fn compromise_probability(f: f64, x: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "f out of range");
    1.0 - (1.0 - f).powi(x as i32)
}

/// `1 − (1 − f)^(l·x)`: the multi-guard amplification (the paper's
/// average over `l` guard relays with `x` distinct ASes each).
pub fn multi_guard_probability(f: f64, x: usize, l: usize) -> f64 {
    compromise_probability(f, x * l)
}

/// End-to-end compromise probability for a *colluding* adversary that
/// must observe both the entry segment (AS set `entry`) and the exit
/// segment (AS set `exit`), with i.i.d. malicious probability `f` per
/// AS. By inclusion–exclusion over the union:
///
/// `P = 1 − (1−f)^|E| − (1−f)^|X| + (1−f)^|E∪X|`.
pub fn end_to_end_probability(f: f64, entry: &BTreeSet<Asn>, exit: &BTreeSet<Asn>) -> f64 {
    assert!((0.0..=1.0).contains(&f), "f out of range");
    let e = entry.len() as i32;
    let x = exit.len() as i32;
    let u = entry.union(exit).count() as i32;
    let q = 1.0 - f;
    1.0 - q.powi(e) - q.powi(x) + q.powi(u)
}

/// Probability that a *single* (non-colluding) malicious AS observes
/// both segments: some AS lies in the intersection and is malicious.
pub fn single_as_probability(f: f64, entry: &BTreeSet<Asn>, exit: &BTreeSet<Asn>) -> f64 {
    compromise_probability(f, entry.intersection(exit).count())
}

/// Monte-Carlo estimate of [`end_to_end_probability`], for validating
/// the closed form: each trial flips a malicious coin per AS and checks
/// both segments. Returns the observed frequency.
pub fn monte_carlo_end_to_end(
    f: f64,
    entry: &BTreeSet<Asn>,
    exit: &BTreeSet<Asn>,
    trials: u32,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let union: Vec<Asn> = entry.union(exit).copied().collect();
    let mut hits = 0u32;
    for _ in 0..trials {
        let malicious: BTreeSet<Asn> = union
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(f))
            .collect();
        if !malicious.is_disjoint(entry) && !malicious.is_disjoint(exit) {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> BTreeSet<Asn> {
        v.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn closed_form_basics() {
        assert_eq!(compromise_probability(0.0, 10), 0.0);
        assert_eq!(compromise_probability(1.0, 1), 1.0);
        assert_eq!(compromise_probability(0.5, 0), 0.0);
        assert!((compromise_probability(0.1, 1) - 0.1).abs() < 1e-12);
        // Exponential growth in x: quickly approaches 1.
        assert!(compromise_probability(0.05, 50) > 0.9);
        // Monotone in x.
        assert!(
            compromise_probability(0.1, 5) < compromise_probability(0.1, 10)
        );
    }

    #[test]
    fn multi_guard_amplifies() {
        let single = compromise_probability(0.05, 8);
        let multi = multi_guard_probability(0.05, 8, 3);
        assert!(multi > single);
        assert!((multi - compromise_probability(0.05, 24)).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_reduces_to_intersection_logic() {
        // Disjoint segments: independent events.
        let e = set(&[1, 2, 3]);
        let x = set(&[4, 5]);
        let f = 0.2;
        let expect = compromise_probability(f, 3) * compromise_probability(f, 2);
        assert!((end_to_end_probability(f, &e, &x) - expect).abs() < 1e-12);
        // Identical segments: equals single-segment probability.
        let p = end_to_end_probability(f, &e, &e);
        assert!((p - compromise_probability(f, 3)).abs() < 1e-12);
        // Empty segment: zero.
        assert_eq!(end_to_end_probability(f, &set(&[]), &x), 0.0);
    }

    #[test]
    fn single_as_uses_intersection() {
        let e = set(&[1, 2, 3]);
        let x = set(&[3, 4]);
        assert!(
            (single_as_probability(0.1, &e, &x) - 0.1).abs() < 1e-12
        );
        assert_eq!(single_as_probability(0.1, &e, &set(&[9])), 0.0);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let e = set(&[1, 2, 3, 4]);
        let x = set(&[3, 4, 5, 6, 7]);
        let f = 0.15;
        let closed = end_to_end_probability(f, &e, &x);
        let mc = monte_carlo_end_to_end(f, &e, &x, 200_000, 42);
        assert!(
            (closed - mc).abs() < 0.01,
            "closed {closed:.4} vs mc {mc:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "f out of range")]
    fn invalid_f_panics() {
        let _ = compromise_probability(1.5, 3);
    }
}
