//! End-to-end population harness: the paper's attack executed, not just
//! predicted.
//!
//! [`adversary::SegmentObservers`](crate::adversary) answers *who could*
//! deanonymize a circuit; this module runs the whole machine to check
//! *who does*: a population of clients builds circuits (Tor-style,
//! bandwidth-weighted, fixed guards), every circuit carries a simulated
//! download, a malicious AS coalition records header-only captures at
//! the ASes it controls, and the §3.3 correlator matches entry-side ACK
//! streams against exit-side data streams. Success means linking a
//! client to its destination — with decoys, mismatches, and the
//! asymmetric-direction capability all in play.

use crate::adversary::{ObservationMode, SegmentObservers};
use quicksand_net::{Asn, SimDuration, SimTime};
use quicksand_topology::RoutingTree;
use quicksand_tor::{CircuitBuilder, SelectionConfig};
use quicksand_traffic::correlate::{match_circuit, CorrelationConfig};
use quicksand_traffic::{Capture, CircuitFlow, CircuitFlowConfig, Segment, TcpConfig};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for [`run_population_attack`].
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Number of client circuits to simulate.
    pub n_circuits: usize,
    /// Fraction of ASes that are malicious and colluding.
    pub f: f64,
    /// Observation capability of the coalition.
    pub mode: ObservationMode,
    /// Correlation parameters.
    pub bin: SimDuration,
    /// Maximum lag bins for the correlator.
    pub max_lag_bins: usize,
    /// RNG seed (adversary draw, circuit builds, transfer shapes).
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n_circuits: 12,
            f: 0.05,
            mode: ObservationMode::AnyDirection,
            bin: SimDuration::from_millis(400),
            max_lag_bins: 6,
            seed: 0x9090,
        }
    }
}

/// The outcome of the population attack.
#[derive(Clone, Debug)]
pub struct PopulationOutcome {
    /// Circuits whose entry AND exit side the coalition observed (in
    /// compatible directions for the configured mode).
    pub observable: usize,
    /// Of the observable circuits, how many the correlator linked to
    /// the correct destination flow.
    pub deanonymized: usize,
    /// Total circuits simulated.
    pub total: usize,
    /// The malicious coalition drawn.
    pub coalition: BTreeSet<Asn>,
    /// Predicted observable count from the routing predicate alone
    /// (sanity anchor: equals `observable`).
    pub predicted_observable: usize,
}

impl PopulationOutcome {
    /// Fraction of all circuits fully deanonymized.
    pub fn deanonymization_rate(&self) -> f64 {
        self.deanonymized as f64 / self.total.max(1) as f64
    }
}

/// Run the population attack.
///
/// For every simulated circuit the coalition collects what it can see:
/// the entry segment (client↔guard) in data or ACK direction, and the
/// exit segment (exit↔destination) likewise. Where both ends are
/// covered, the correlator must pick the true exit-side flow out of
/// *all* observed exit-side flows (every other circuit is a decoy).
pub fn run_population_attack(
    scenario: &crate::scenario::Scenario,
    config: &PopulationConfig,
) -> PopulationOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let g = &scenario.topo.graph;

    // The coalition: each AS malicious i.i.d. with probability f.
    let coalition: BTreeSet<Asn> =
        g.asns().filter(|_| rng.gen_bool(config.f)).collect();

    // Build circuits.
    let mut builder = CircuitBuilder::new(
        &scenario.consensus,
        &SelectionConfig {
            guards_per_client: 3,
            seed: config.seed ^ 0xB111,
        },
    );
    struct Sim {
        observers: SegmentObservers,
        flow: CircuitFlow,
    }
    let mut sims: Vec<Sim> = Vec::new();
    let mut tree_cache: BTreeMap<Asn, RoutingTree> = BTreeMap::new();
    let tree = |a: Asn, cache: &mut BTreeMap<Asn, RoutingTree>| -> RoutingTree {
        cache
            .entry(a)
            .or_insert_with(|| RoutingTree::compute(g, a).expect("AS routed"))
            .clone()
    };
    let stubs = &scenario.topo.stubs;
    while sims.len() < config.n_circuits {
        let client_as = stubs[rng.gen_range(0..stubs.len())];
        let dest_as = stubs[rng.gen_range(0..stubs.len())];
        let Some(guards) = builder.pick_guards(3) else { break };
        let Some(circuit) = builder.build_circuit(client_as, &guards, dest_as) else {
            continue;
        };
        let guard_as = scenario.consensus.relay(circuit.guard).host_as;
        let exit_as = scenario.consensus.relay(circuit.exit).host_as;
        if [client_as, guard_as, exit_as, dest_as]
            .iter()
            .collect::<BTreeSet<_>>()
            .len()
            < 4
        {
            continue; // degenerate circuit; redraw
        }
        let tg = tree(guard_as, &mut tree_cache);
        let tc = tree(client_as, &mut tree_cache);
        let td = tree(dest_as, &mut tree_cache);
        let te = tree(exit_as, &mut tree_cache);
        let Some(observers) =
            SegmentObservers::compute(g, client_as, guard_as, exit_as, dest_as, &tg, &tc, &td, &te)
        else {
            continue;
        };
        // Each circuit carries a differently-shaped download.
        let flow = CircuitFlow::simulate(&CircuitFlowConfig {
            first_hop: TcpConfig {
                transfer_bytes: (6 + rng.gen_range(0..12)) << 20,
                rate_bytes_per_sec: 900_000 + rng.gen_range(0..1_500_000),
                one_way_delay: SimDuration::from_millis(20 + rng.gen_range(0..60)),
                // Real paths lose packets; the resulting cwnd sawtooth
                // is the per-flow fingerprint correlation feeds on. A
                // lossless constant-rate flow is a featureless ramp —
                // the degenerate hardest case, not the realistic one.
                loss: 0.005 + rng.gen_range(0.0..0.02),
                seed: rng.gen(),
                ..Default::default()
            },
            ..Default::default()
        });
        sims.push(Sim { observers, flow });
    }

    // Direction bookkeeping for a download: DATA flows dest→…→client,
    // so the data direction at the entry segment is the guard→client
    // path (entry_rev) and at the exit segment the dest→exit path
    // (exit_rev); the ACK direction is client→guard (entry_fwd) and
    // exit→dest (exit_fwd) respectively.
    //
    // Exit-side captures the coalition recorded, per circuit: `(data
    // capture, ack capture)` with `None` where unobserved.
    let exit_captures: Vec<(Option<&Capture>, Option<&Capture>)> = sims
        .iter()
        .map(|s| {
            let data = (!coalition.is_disjoint(&s.observers.exit_rev))
                .then(|| s.flow.capture(Segment::ServerExit, true));
            let ack = (!coalition.is_disjoint(&s.observers.exit_fwd))
                .then(|| s.flow.capture(Segment::ServerExit, false));
            (data, ack)
        })
        .collect();

    let corr_cfg = CorrelationConfig {
        bin: config.bin,
        max_lag_bins: config.max_lag_bins,
    };
    let mut observable = 0usize;
    let mut predicted = 0usize;
    let mut deanonymized = 0usize;
    for (i, s) in sims.iter().enumerate() {
        if s.observers.colluding_deanonymize(&coalition, config.mode) {
            predicted += 1;
        }
        let entry_data = (!coalition.is_disjoint(&s.observers.entry_rev))
            .then(|| s.flow.capture(Segment::GuardClient, true));
        let entry_ack = (!coalition.is_disjoint(&s.observers.entry_fwd))
            .then(|| s.flow.capture(Segment::GuardClient, false));
        // Choose an entry capture whose pairing with this circuit's own
        // exit capture is allowed by the mode. SymmetricOnly requires
        // same-flow-direction pairs (data/data or ack/ack); the §3.3
        // asymmetric capability allows any combination.
        let (own_exit_data, own_exit_ack) = exit_captures[i];
        let pairing: Option<(&Capture, bool)> = match config.mode {
            ObservationMode::SymmetricOnly => {
                if entry_data.is_some() && own_exit_data.is_some() {
                    entry_data.map(|c| (c, true))
                } else if entry_ack.is_some() && own_exit_ack.is_some() {
                    entry_ack.map(|c| (c, false))
                } else {
                    None
                }
            }
            ObservationMode::AnyDirection => {
                let entry = entry_data.or(entry_ack);
                let exit_seen = own_exit_data.is_some() || own_exit_ack.is_some();
                match (entry, exit_seen) {
                    (Some(c), true) => Some((c, entry_data.is_some())),
                    _ => None,
                }
            }
        };
        let Some((entry_capture, entry_is_data)) = pairing else {
            continue;
        };
        observable += 1;
        // Candidate exit flows: every circuit's exit capture the
        // coalition may legally pair with this entry observation.
        let candidates: Vec<(usize, &Capture)> = exit_captures
            .iter()
            .enumerate()
            .filter_map(|(j, &(data, ack))| {
                let cap = match config.mode {
                    ObservationMode::SymmetricOnly => {
                        if entry_is_data {
                            data
                        } else {
                            ack
                        }
                    }
                    ObservationMode::AnyDirection => data.or(ack),
                };
                cap.map(|c| (j, c))
            })
            .collect();
        let refs: Vec<&Capture> = candidates.iter().map(|(_, c)| *c).collect();
        let end = s.flow.completed_at + SimDuration::from_secs(3);
        if let Some(result) =
            match_circuit(entry_capture, &refs, SimTime::ZERO, end, &corr_cfg)
        {
            if candidates[result.best_index].0 == i {
                deanonymized += 1;
            }
        }
    }

    PopulationOutcome {
        observable,
        deanonymized,
        total: sims.len(),
        coalition,
        predicted_observable: predicted,
    }
}

/// Render the outcome.
pub fn render_population(o: &PopulationOutcome, config: &PopulationConfig) -> String {
    format!(
        "E2E: population attack (f={:.2}, {:?}) — {} circuits, {} observable \
         ({} predicted by the routing predicate), {} deanonymized ({:.1}%)\n",
        config.f,
        config.mode,
        o.total,
        o.observable,
        o.predicted_observable,
        o.deanonymized,
        100.0 * o.deanonymization_rate()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_runs_and_is_consistent() {
        let (s, _) = crate::testworld::get();
        let cfg = PopulationConfig {
            n_circuits: 6,
            f: 0.15,
            seed: 3,
            ..Default::default()
        };
        let o = run_population_attack(s, &cfg);
        assert_eq!(o.total, 6);
        assert!(o.observable <= o.total);
        assert!(o.deanonymized <= o.observable);
        // The executed attack never observes more than the predicate
        // predicts (the predicate is the upper bound).
        assert!(o.observable <= o.predicted_observable);
    }

    #[test]
    fn observed_circuits_correlate_correctly() {
        // With a large coalition, most circuits are observable, and the
        // correlator should link nearly all of them (distinct transfer
        // shapes, clean network).
        let (s, _) = crate::testworld::get();
        let cfg = PopulationConfig {
            n_circuits: 6,
            f: 0.5,
            seed: 7,
            ..Default::default()
        };
        let o = run_population_attack(s, &cfg);
        assert!(o.observable >= 3, "observable {}", o.observable);
        assert!(
            o.deanonymized as f64 >= 0.8 * o.observable as f64,
            "correlator linked only {}/{}",
            o.deanonymized,
            o.observable
        );
    }

    #[test]
    fn empty_coalition_observes_nothing() {
        let (s, _) = crate::testworld::get();
        let cfg = PopulationConfig {
            n_circuits: 4,
            f: 0.0,
            ..Default::default()
        };
        let o = run_population_attack(s, &cfg);
        assert_eq!(o.observable, 0);
        assert_eq!(o.deanonymized, 0);
        assert!(o.coalition.is_empty());
    }

    #[test]
    fn asymmetric_mode_observes_at_least_symmetric() {
        let (s, _) = crate::testworld::get();
        let base = PopulationConfig {
            n_circuits: 8,
            f: 0.25,
            seed: 11,
            ..Default::default()
        };
        let asym = run_population_attack(s, &base);
        let sym = run_population_attack(
            s,
            &PopulationConfig {
                mode: ObservationMode::SymmetricOnly,
                ..base
            },
        );
        assert!(asym.observable >= sym.observable);
    }
}
