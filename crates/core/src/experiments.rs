//! Reproduction of every table and figure in the paper's evaluation
//! (§4), plus the analytical model and attack experiments (see
//! DESIGN.md §4 for the experiment index).
//!
//! Each function computes one artifact's data from a [`Scenario`] (or a
//! traffic/attack configuration) and returns a plain struct that
//! `report` renders and the benches re-run at reduced scale.

use crate::scenario::{MonthResult, Scenario};
use crate::temporal;
use quicksand_attack::community::{stealth_frontier, FrontierPoint};
use quicksand_attack::hijack::origin_hijack;
use quicksand_attack::intercept::plan_interception;
use quicksand_bgp::metrics::{churn_ratios, path_changes, Ccdf};
use quicksand_bgp::{Route, SimConfig, UpdateMessage};
use quicksand_net::{Asn, SimDuration, SimTime};
use quicksand_tor::TorPrefixStats;
use quicksand_traffic::correlate::{correlate, CorrelationConfig};
use quicksand_traffic::{CircuitFlow, CircuitFlowConfig, Segment};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// T1 — the §4 "Methodology and datasets" statistics block.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Total relays (paper: 4586).
    pub n_relays: usize,
    /// Guard-flagged relays (paper: 1918).
    pub n_guards: usize,
    /// Exit-flagged relays (paper: 891).
    pub n_exits: usize,
    /// Both flags (paper: 442).
    pub n_both: usize,
    /// Tor-prefix statistics (paper: 1251 prefixes, 650 ASes, median 1,
    /// p75 2, max 33).
    pub prefix_stats: TorPrefixStats,
    /// Mean fraction of sessions on which a Tor prefix was received
    /// (paper: 40%).
    pub mean_session_visibility: f64,
    /// Max fraction (paper: 60%).
    pub max_session_visibility: f64,
    /// Median number of Tor prefixes learned per session (paper: 438 =
    /// 35% of total).
    pub median_prefixes_per_session: usize,
    /// Max (paper: 1242 = 99%).
    pub max_prefixes_per_session: usize,
}

/// Compute T1 from a built scenario and its month run.
pub fn table1(scenario: &Scenario, month: &MonthResult) -> Table1 {
    let c = &scenario.consensus;
    let tor = scenario.tor_prefix_set();
    let log = &month.cleaned;
    let sessions = log.sessions();
    let n_sessions = sessions.len().max(1);

    // Visibility: which sessions announced each Tor prefix at least once.
    let mut seen_on: std::collections::BTreeMap<
        quicksand_net::Ipv4Prefix,
        BTreeSet<quicksand_bgp::SessionId>,
    > = Default::default();
    for r in &log.records {
        if let UpdateMessage::Announce(_) = r.msg {
            let p = r.msg.prefix();
            if tor.contains(&p) {
                seen_on.entry(p).or_default().insert(r.session);
            }
        }
    }
    let fractions: Vec<f64> = tor
        .iter()
        .map(|p| {
            seen_on.get(p).map_or(0.0, |s| s.len() as f64) / n_sessions as f64
        })
        .collect();
    let mean_vis = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    let max_vis = fractions.iter().copied().fold(0.0f64, f64::max);

    let mut per_session: Vec<usize> = sessions
        .iter()
        .map(|s| {
            log.prefixes_on(*s)
                .into_iter()
                .filter(|p| tor.contains(p))
                .count()
        })
        .collect();
    per_session.sort_unstable();
    let median = per_session.get(per_session.len() / 2).copied().unwrap_or(0);
    let max = per_session.last().copied().unwrap_or(0);

    Table1 {
        n_relays: c.len(),
        n_guards: c.guards().count(),
        n_exits: c.exits().count(),
        n_both: c.guard_and_exit().count(),
        prefix_stats: scenario.tor_prefixes.stats(),
        mean_session_visibility: mean_vis,
        max_session_visibility: max_vis,
        median_prefixes_per_session: median,
        max_prefixes_per_session: max,
    }
}

/// F2L — Fig 2 (left): relay concentration across ASes.
#[derive(Clone, Debug)]
pub struct Fig2Left {
    /// `(number of top ASes, cumulative % of guard/exit relays)` curve.
    pub curve: Vec<(usize, f64)>,
    /// Share of the top 5 ASes (paper: ~20%).
    pub top5_share: f64,
    /// Number of distinct ASes hosting guard/exit relays.
    pub n_hosting_ases: usize,
}

/// Compute F2L from the consensus.
pub fn fig2_left(scenario: &Scenario) -> Fig2Left {
    let mut per_as: std::collections::BTreeMap<Asn, usize> = Default::default();
    for r in scenario.consensus.guards_or_exits() {
        *per_as.entry(r.host_as).or_default() += 1;
    }
    let mut counts: Vec<usize> = per_as.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = counts.iter().sum();
    let mut curve = Vec::with_capacity(counts.len());
    let mut cum = 0usize;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        curve.push((i + 1, 100.0 * cum as f64 / total as f64));
    }
    let top5_share = counts.iter().take(5).sum::<usize>() as f64 / total as f64;
    Fig2Left {
        curve,
        top5_share,
        n_hosting_ases: counts.len(),
    }
}

/// F2R — Fig 2 (right): the asymmetric traffic-analysis time series.
#[derive(Clone, Debug)]
pub struct Fig2Right {
    /// The simulated circuit flow (all eight captures).
    pub flow: CircuitFlow,
    /// `(label, [(seconds, megabytes)])` — the four curves the paper
    /// plots: guard→client data, client→guard acks, server→exit data,
    /// exit→server acks.
    pub curves: Vec<(String, Vec<(f64, f64)>)>,
    /// Minimum pairwise correlation among the four curves (the figure's
    /// claim: "nearly identical", so this should be ≈ 1).
    pub min_pairwise_correlation: f64,
}

/// Compute F2R by simulating a large download over a circuit.
pub fn fig2_right(config: &CircuitFlowConfig, samples: usize) -> Fig2Right {
    let flow = CircuitFlow::simulate(config);
    let end = flow.completed_at;
    let four = [
        flow.capture(Segment::GuardClient, true).clone(),
        flow.capture(Segment::GuardClient, false).clone(),
        flow.capture(Segment::ServerExit, true).clone(),
        flow.capture(Segment::ServerExit, false).clone(),
    ];
    let curves = four
        .iter()
        .map(|c| {
            let pts: Vec<(f64, f64)> = (0..=samples)
                .map(|k| {
                    let t = SimTime(end.0 * k as u64 / samples as u64);
                    (t.as_secs_f64(), c.series.at(t) as f64 / 1e6)
                })
                .collect();
            (c.label.clone(), pts)
        })
        .collect();
    // Bin width scaled to the transfer duration (~50 bins) so short
    // test transfers and the paper's 30-second download both get a
    // well-conditioned increment vector.
    let corr_cfg = CorrelationConfig {
        bin: quicksand_net::SimDuration((end.0 / 50).max(10_000)),
        max_lag_bins: 8,
    };
    let mut min_corr = f64::INFINITY;
    for i in 0..four.len() {
        for j in (i + 1)..four.len() {
            let r = correlate(&four[i], &four[j], SimTime::ZERO, end, &corr_cfg);
            min_corr = min_corr.min(r.coefficient);
        }
    }
    Fig2Right {
        flow,
        curves,
        min_pairwise_correlation: min_corr,
    }
}

/// F3L — Fig 3 (left): CCDF of median-normalized Tor-prefix churn.
#[derive(Clone, Debug)]
pub struct Fig3Left {
    /// The CCDF of per-(session, Tor prefix) change ratios.
    pub ccdf: Ccdf,
    /// Fraction of ratios > 1 (paper: >50%).
    pub fraction_above_one: f64,
    /// The maximum ratio (paper: >2000 for one pathological prefix).
    pub max_ratio: f64,
}

/// Compute F3L from a month run.
pub fn fig3_left(scenario: &Scenario, month: &MonthResult) -> Fig3Left {
    let changes = path_changes(&month.cleaned);
    let ratios = churn_ratios(&changes, &scenario.tor_prefix_set());
    let ccdf = Ccdf::new(ratios);
    let fraction_above_one = ccdf.at(1.0 + 1e-9);
    let max_ratio = ccdf.max().unwrap_or(0.0);
    Fig3Left {
        ccdf,
        fraction_above_one,
        max_ratio,
    }
}

/// F3R — Fig 3 (right): CCDF of extra ASes (≥ 5 min) per Tor prefix.
#[derive(Clone, Debug)]
pub struct Fig3Right {
    /// CCDF of per-prefix extra-AS counts.
    pub ccdf: Ccdf,
    /// Fraction of prefixes gaining ≥ 2 extra ASes (paper: ~50%).
    pub fraction_at_least_2: f64,
    /// Fraction gaining > 5 (paper: ~8%).
    pub fraction_above_5: f64,
}

/// Compute F3R from a month run.
///
/// "Cases" are (session, Tor prefix) pairs, matching the paper's "in
/// 50% of the cases, the number of ASes seeing Tor traffic increased by
/// 2": each vantage has its own baseline first path, and extra ASes are
/// counted against it. (A union-across-sessions variant is available as
/// [`quicksand_bgp::metrics::extra_ases_per_prefix`]; it reads ~one
/// order of magnitude higher since 70 vantages see 70 different paths.)
pub fn fig3_right(scenario: &Scenario, month: &MonthResult) -> Fig3Right {
    let tor = scenario.tor_prefix_set();
    let timelines = quicksand_bgp::metrics::PathTimeline::from_log(&month.cleaned);
    let counts: Vec<f64> = timelines
        .into_iter()
        .filter(|((_, p), _)| tor.contains(p))
        .map(|(_, tl)| {
            tl.extra_ases(month.horizon_end, SimDuration::from_mins(5)).len() as f64
        })
        .collect();
    let ccdf = Ccdf::new(counts);
    Fig3Right {
        fraction_at_least_2: ccdf.at(2.0),
        fraction_above_5: ccdf.at(5.0 + 1e-9),
        ccdf,
    }
}

/// M1 — the §3.1 model sweep: compromise probability vs `f`, `x`, `l`.
#[derive(Clone, Debug)]
pub struct ModelSweep {
    /// Rows: `(f, x, l, analytic probability, Monte-Carlo estimate)`.
    pub rows: Vec<(f64, usize, usize, f64, f64)>,
}

/// Compute M1 (with Monte-Carlo validation per row).
pub fn model_sweep(fs: &[f64], xs: &[usize], ls: &[usize], trials: u32) -> ModelSweep {
    let mut rows = Vec::new();
    for (i, &f) in fs.iter().enumerate() {
        for (j, &x) in xs.iter().enumerate() {
            for (k, &l) in ls.iter().enumerate() {
                let analytic = temporal::multi_guard_probability(f, x, l);
                // Monte Carlo: x·l distinct ASes, one segment.
                let entry: BTreeSet<Asn> =
                    (0..(x * l) as u32).map(Asn).collect();
                let mc = temporal::monte_carlo_end_to_end(
                    f,
                    &entry,
                    &entry,
                    trials,
                    (i * 1000 + j * 10 + k) as u64,
                );
                rows.push((f, x, l, analytic, mc));
            }
        }
    }
    ModelSweep { rows }
}

/// A1 — hijack experiment: capture fractions and anonymity-set
/// reduction per attacker tier.
#[derive(Clone, Debug)]
pub struct HijackExperiment {
    /// Rows: `(attacker tier label, mean capture fraction, mean exposed
    /// anonymity-set fraction)`.
    pub rows: Vec<(String, f64, f64)>,
    /// Number of (victim, attacker) samples per tier.
    pub samples_per_tier: usize,
}

/// Run A1: hijack sampled guard prefixes from attackers in each tier.
pub fn hijack_experiment(scenario: &Scenario, samples: usize, seed: u64) -> HijackExperiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &scenario.topo.graph;
    // Victim ASes: origins of guard-hosting prefixes.
    let guard_ases: Vec<Asn> = scenario
        .consensus
        .guards()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Synthetic client population: 2000 clients over stub ASes.
    let clients: std::collections::BTreeMap<u64, Asn> = (0..2000u64)
        .map(|id| {
            let a = scenario.topo.stubs[rng.gen_range(0..scenario.topo.stubs.len())];
            (id, a)
        })
        .collect();
    let connected: BTreeSet<u64> = clients.keys().copied().collect();

    let tiers: [(&str, &[Asn]); 3] = [
        ("tier1", &scenario.topo.tier1),
        ("tier2", &scenario.topo.tier2),
        ("stub", &scenario.topo.stubs),
    ];
    let mut rows = Vec::new();
    for (label, pool) in tiers {
        let mut cap_sum = 0.0;
        let mut anon_sum = 0.0;
        let mut n = 0usize;
        for _ in 0..samples {
            let victim = guard_ases[rng.gen_range(0..guard_ases.len())];
            let attacker = pool[rng.gen_range(0..pool.len())];
            if attacker == victim {
                continue;
            }
            let out = origin_hijack(g, victim, attacker);
            cap_sum += out.capture_fraction(g);
            let set = quicksand_attack::anonymity::exposed_anonymity_set(
                &clients,
                &connected,
                &out.captured,
            );
            anon_sum += set.exposure_fraction();
            n += 1;
        }
        rows.push((
            label.to_string(),
            cap_sum / n.max(1) as f64,
            anon_sum / n.max(1) as f64,
        ));
    }
    HijackExperiment {
        rows,
        samples_per_tier: samples,
    }
}

/// A2 — interception experiment: feasibility and stealth.
#[derive(Clone, Debug)]
pub struct InterceptExperiment {
    /// Fraction of sampled (victim, attacker) pairs where interception
    /// is feasible.
    pub feasibility: f64,
    /// Mean capture fraction of feasible interceptions.
    pub mean_capture: f64,
    /// Mean number of ASes observing the forwarded (egress) traffic.
    pub mean_forwarding_observers: f64,
    /// Number of samples attempted.
    pub samples: usize,
}

/// Run A2 over sampled victim guard ASes and multihomed attackers.
pub fn intercept_experiment(
    scenario: &Scenario,
    samples: usize,
    seed: u64,
) -> InterceptExperiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &scenario.topo.graph;
    let guard_ases: Vec<Asn> = scenario
        .consensus
        .guards()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Attackers: multihomed ASes (interception requires ≥ 2 neighbors).
    let attackers: Vec<Asn> = g.asns().filter(|a| g.degree(*a) >= 2).collect();
    let mut feasible = 0usize;
    let mut cap_sum = 0.0;
    let mut obs_sum = 0.0;
    let mut n = 0usize;
    for _ in 0..samples {
        let victim = guard_ases[rng.gen_range(0..guard_ases.len())];
        let attacker = attackers[rng.gen_range(0..attackers.len())];
        if attacker == victim {
            continue;
        }
        n += 1;
        if let Some(plan) = plan_interception(g, victim, attacker) {
            feasible += 1;
            cap_sum += plan.outcome.captured.len() as f64 / g.len() as f64;
            obs_sum += plan.forwarding_observers(attacker).len() as f64;
        }
    }
    InterceptExperiment {
        feasibility: feasible as f64 / n.max(1) as f64,
        mean_capture: cap_sum / feasible.max(1) as f64,
        mean_forwarding_observers: obs_sum / feasible.max(1) as f64,
        samples: n,
    }
}

/// E9 — convergence transients: ASes that glimpse a *client's* traffic
/// only during BGP path exploration ("the convergence process allows
/// even more far-flung ASes to get a (temporary) look at the client's
/// traffic", §3.1).
#[derive(Clone, Debug)]
pub struct ConvergenceExperiment {
    /// Per (trial, client): `(ASes on stable paths before ∪ after, ASes
    /// crossed during convergence, extra transient ASes)`.
    pub samples: Vec<(usize, usize, usize)>,
    /// Mean extra transient ASes per client path per event.
    pub mean_extra: f64,
    /// Fraction of client paths that exposed at least one extra AS.
    pub fraction_exposed: f64,
}

/// Run E9: fail the link carrying a guard prefix's traffic and, for
/// sampled client ASes, compare the ASes crossed on transient selected
/// paths against the union of the stable paths before and after the
/// event.
pub fn convergence_experiment(
    scenario: &Scenario,
    trials: usize,
    seed: u64,
) -> ConvergenceExperiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &scenario.topo.graph;
    let guard_ases: Vec<Asn> = scenario
        .consensus
        .guards()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let prefix: quicksand_net::Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    let mut samples = Vec::new();
    for t in 0..trials {
        let origin = guard_ases[rng.gen_range(0..guard_ases.len())];
        // Fail one of the origin's provider links and watch convergence.
        let providers: Vec<Asn> = g.providers(origin).collect();
        if providers.len() < 2 {
            continue; // need an alternative for interesting convergence
        }
        let failed = providers[rng.gen_range(0..providers.len())];
        // Sampled client ASes (stubs other than the origin).
        let clients: Vec<Asn> = scenario
            .topo
            .stubs
            .iter()
            .copied()
            .filter(|&a| a != origin)
            .step_by(7)
            .take(12)
            .collect();

        let mut sim = quicksand_bgp::EventSim::new(
            g,
            SimConfig {
                seed: seed.wrapping_add(t as u64),
                ..SimConfig::default()
            },
        );
        sim.originate(origin, Route::originate(prefix, origin), None);
        sim.run_to_quiescence();
        let before: std::collections::BTreeMap<Asn, BTreeSet<Asn>> = clients
            .iter()
            .filter_map(|&c| sim.path_at(c, &prefix).map(|p| (c, p.as_set())))
            .collect();
        sim.link_down(origin, failed);
        let history = sim.run_recording(prefix);
        for &c in &clients {
            let Some(changes) = history.get(&c) else { continue };
            let Some(base_before) = before.get(&c) else { continue };
            // Stable-after = the last recorded path.
            let Some((_, Some(after_path))) = changes.last() else {
                continue;
            };
            let mut stable: BTreeSet<Asn> = base_before.clone();
            stable.extend(after_path.as_set());
            let mut during: BTreeSet<Asn> = BTreeSet::new();
            for (_, path) in changes {
                if let Some(p) = path {
                    during.extend(p.as_set());
                }
            }
            let extra = during.difference(&stable).count();
            samples.push((stable.len(), during.len(), extra));
        }
    }
    let mean_extra = samples.iter().map(|&(_, _, e)| e as f64).sum::<f64>()
        / samples.len().max(1) as f64;
    let fraction_exposed = samples.iter().filter(|&&(_, _, e)| e > 0).count() as f64
        / samples.len().max(1) as f64;
    ConvergenceExperiment {
        samples,
        mean_extra,
        fraction_exposed,
    }
}

/// S1 — the community-scoped stealth frontier (\[35\], §3.2/§5): how
/// much capture an attacker retains as it scopes the hijack away from
/// the collector vantage points.
#[derive(Clone, Debug)]
pub struct StealthExperiment {
    /// Per sampled (victim, attacker): the greedy frontier of
    /// (blocked edges, capture fraction, vantage visibility).
    pub frontiers: Vec<Vec<FrontierPoint>>,
    /// Mean capture fraction retained at the *stealthiest* point of
    /// each frontier.
    pub mean_stealthy_capture: f64,
    /// Mean visibility at the stealthiest point (0 = fully hidden from
    /// all collector sessions).
    pub mean_final_visibility: f64,
}

/// Run S1 over sampled victim guard ASes and attacker ASes, using the
/// scenario's collector session peers as the monitoring vantages.
pub fn stealth_experiment(
    scenario: &Scenario,
    samples: usize,
    max_blocks: usize,
    seed: u64,
) -> StealthExperiment {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &scenario.topo.graph;
    let guard_ases: Vec<Asn> = scenario
        .consensus
        .guards()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let attackers: Vec<Asn> = g.asns().filter(|a| g.degree(*a) >= 2).collect();
    let vantages = &scenario.session_peers;
    let mut frontiers = Vec::new();
    let mut cap_sum = 0.0;
    let mut vis_sum = 0.0;
    for _ in 0..samples {
        let victim = guard_ases[rng.gen_range(0..guard_ases.len())];
        let attacker = attackers[rng.gen_range(0..attackers.len())];
        if attacker == victim {
            continue;
        }
        let f = stealth_frontier(g, victim, attacker, vantages, max_blocks);
        if let Some(last) = f.last() {
            cap_sum += last.capture;
            vis_sum += last.visibility;
        }
        frontiers.push(f);
    }
    let n = frontiers.len().max(1) as f64;
    StealthExperiment {
        mean_stealthy_capture: cap_sum / n,
        mean_final_visibility: vis_sum / n,
        frontiers,
    }
}

/// P1 — the premise behind §3.1: static AS-path analysis (Feamster–
/// Dingledine, Edman–Syverson) underestimates exposure, because it sees
/// one snapshot path where a month of churn crosses many more ASes.
#[derive(Clone, Debug)]
pub struct StaticVsDynamic {
    /// Mean ASes on the static (first) client→guard path.
    pub mean_static: f64,
    /// Mean distinct ASes (≥ 5 min) over the month.
    pub mean_dynamic: f64,
    /// Mean compromise probability at `f` using the static estimate.
    pub p_static: f64,
    /// Mean compromise probability at `f` using the dynamic truth.
    pub p_dynamic: f64,
    /// The f used.
    pub f: f64,
    /// Accuracy of Gao relationship inference run on the month's
    /// cleaned collector log (the toolchain prior work relied on),
    /// against the generator's ground-truth relationships.
    pub inference_accuracy: f64,
    /// (client, guard) pairs sampled.
    pub n_pairs: usize,
}

/// Run P1 over sampled (client, guard-AS) pairs and the month's log.
pub fn static_vs_dynamic(
    scenario: &Scenario,
    month: &MonthResult,
    n_clients: usize,
    n_guards: usize,
    f: f64,
    seed: u64,
) -> StaticVsDynamic {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clients: Vec<Asn> = scenario.topo.stubs.clone();
    clients.shuffle(&mut rng);
    clients.truncate(n_clients);
    let guard_ases: Vec<Asn> = scenario
        .consensus
        .guards()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .take(n_guards)
        .collect();
    let hist = scenario.path_history(&clients, &guard_ases);
    let horizon = scenario.horizon_end();
    let min_dur = SimDuration::from_mins(5);
    let mut static_sum = 0.0;
    let mut dyn_sum = 0.0;
    let mut p_static = 0.0;
    let mut p_dynamic = 0.0;
    let mut n_pairs = 0usize;
    for ((_, _), tl) in &hist {
        let stat = tl.baseline().len();
        let dynamic = tl.distinct_ases(horizon, min_dur).len();
        static_sum += stat as f64;
        dyn_sum += dynamic as f64;
        p_static += temporal::compromise_probability(f, stat);
        p_dynamic += temporal::compromise_probability(f, dynamic);
        n_pairs += 1;
    }
    let n = n_pairs.max(1) as f64;

    // Gao inference over the month's observed AS paths — the same
    // estimation pipeline prior AS-aware Tor work used.
    let mut paths: Vec<quicksand_net::AsPath> = Vec::new();
    for r in &month.cleaned.records {
        if let UpdateMessage::Announce(route) = &r.msg {
            if route.as_path.len() >= 2 {
                paths.push(route.as_path.clone());
            }
        }
        if paths.len() >= 50_000 {
            break; // plenty for inference; bound the cost
        }
    }
    let inferred = quicksand_topology::infer::infer_relationships(
        &paths,
        &quicksand_topology::infer::InferenceConfig::default(),
    );
    let inference_accuracy =
        quicksand_topology::infer::accuracy_against(&scenario.topo.graph, &inferred);

    StaticVsDynamic {
        mean_static: static_sum / n,
        mean_dynamic: dyn_sum / n,
        p_static: p_static / n,
        p_dynamic: p_dynamic / n,
        f,
        inference_accuracy,
        n_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> &'static (Scenario, crate::scenario::MonthResult) {
        crate::testworld::get()
    }

    #[test]
    fn table1_matches_consensus() {
        let (s, m) = world();
        let t = table1(s, m);
        assert_eq!(t.n_relays, 300);
        assert_eq!(t.n_guards, 125);
        assert_eq!(t.n_exits, 58);
        assert_eq!(t.n_both, 29);
        assert!(t.prefix_stats.n_prefixes > 0);
        assert!(t.mean_session_visibility > 0.0);
        assert!(t.max_session_visibility <= 1.0);
        assert!(t.max_prefixes_per_session >= t.median_prefixes_per_session);
    }

    #[test]
    fn fig2_left_curve_is_cumulative() {
        let (s, _) = world();
        let f = fig2_left(s);
        assert!(!f.curve.is_empty());
        assert!((f.curve.last().unwrap().1 - 100.0).abs() < 1e-9);
        for w in f.curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(f.top5_share > 0.05, "no concentration: {}", f.top5_share);
    }

    #[test]
    fn fig2_right_curves_nearly_identical() {
        let cfg = CircuitFlowConfig {
            first_hop: quicksand_traffic::TcpConfig {
                transfer_bytes: 2 * 1024 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        let f = fig2_right(&cfg, 30);
        assert_eq!(f.curves.len(), 4);
        assert!(
            f.min_pairwise_correlation > 0.9,
            "correlation {}",
            f.min_pairwise_correlation
        );
        // Curves end at the same transfer total (2 MB).
        for (label, pts) in &f.curves {
            let last = pts.last().unwrap().1;
            assert!(
                (last - 2.0 * 1024.0 * 1024.0 / 1e6).abs() < 0.05,
                "{label} ends at {last} MB"
            );
        }
    }

    #[test]
    fn fig3_pipeline_produces_distributions() {
        let (s, m) = world();
        let l = fig3_left(s, m);
        assert!(!l.ccdf.is_empty());
        assert!(l.max_ratio >= 1.0);
        let r = fig3_right(s, m);
        assert!(!r.ccdf.is_empty());
        assert!(r.fraction_at_least_2 >= 0.0 && r.fraction_at_least_2 <= 1.0);
    }

    #[test]
    fn model_sweep_monte_carlo_agrees() {
        let sweep = model_sweep(&[0.05, 0.1], &[4, 10], &[1, 3], 20_000);
        assert_eq!(sweep.rows.len(), 8);
        for (f, x, l, analytic, mc) in sweep.rows {
            assert!(
                (analytic - mc).abs() < 0.02,
                "f={f} x={x} l={l}: {analytic} vs {mc}"
            );
        }
    }

    #[test]
    fn hijack_experiment_produces_rows() {
        let (s, _) = world();
        let h = hijack_experiment(s, 10, 7);
        assert_eq!(h.rows.len(), 3);
        for (label, cap, anon) in &h.rows {
            assert!(*cap > 0.0 && *cap < 1.0, "{label}: capture {cap}");
            assert!(*anon >= 0.0 && *anon <= 1.0);
        }
    }

    #[test]
    fn intercept_experiment_runs() {
        let (s, _) = world();
        let i = intercept_experiment(s, 30, 11);
        assert!(i.samples > 0);
        assert!(i.feasibility >= 0.0 && i.feasibility <= 1.0);
        if i.feasibility > 0.0 {
            assert!(i.mean_capture > 0.0);
            assert!(i.mean_forwarding_observers >= 2.0);
        }
    }

    #[test]
    fn static_analysis_underestimates() {
        let (s, m) = world();
        let r = static_vs_dynamic(s, m, 5, 8, 0.05, 19);
        assert!(r.n_pairs > 0);
        assert!(
            r.mean_dynamic >= r.mean_static,
            "dynamic {} < static {}",
            r.mean_dynamic,
            r.mean_static
        );
        assert!(r.p_dynamic >= r.p_static - 1e-12);
        assert!(
            r.inference_accuracy > 0.6,
            "inference accuracy {}",
            r.inference_accuracy
        );
    }

    #[test]
    fn stealth_experiment_trades_capture_for_stealth() {
        let (s, _) = world();
        let e = stealth_experiment(s, 6, 5, 17);
        assert!(!e.frontiers.is_empty());
        for f in &e.frontiers {
            // Visibility never increases along a frontier.
            for w in f.windows(2) {
                assert!(w[1].visibility <= w[0].visibility + 1e-12);
            }
        }
        assert!(e.mean_final_visibility <= 1.0);
    }

    #[test]
    fn convergence_exposes_extra_ases() {
        let (s, _) = world();
        let e = convergence_experiment(s, 5, 13);
        assert!(!e.samples.is_empty());
        // Transient exposure is nonnegative by construction.
        assert!(e.mean_extra >= 0.0);
    }
}
