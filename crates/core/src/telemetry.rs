//! Live telemetry plane for the resident fleet: a scrape endpoint.
//!
//! The supervisor (ROADMAP item 3) runs many scenario cells for a long
//! time; operating it requires seeing inside without attaching a
//! debugger. This module publishes the fleet's state over plain HTTP:
//!
//! * `/metrics` — Prometheus text exposition: the supervisor registry
//!   unlabeled, every cell registry labeled `cell="K"`, synthetic
//!   per-cell series (state, heartbeat age, cursor, restarts, trips),
//!   and per-feed-session series (`quicksand_feed_*`: FSM state,
//!   staleness, acked cursor, connects, reaps, dead letters);
//! * `/healthz` — `200 ok` while every running cell has beaten within
//!   2× the watchdog deadline *and* at least one live feed session is
//!   within its hold time, `503` otherwise (load balancers and CI
//!   probes need a yes/no, not a metrics dump);
//! * `/cells` — one JSON object per cell for humans and scripts, with
//!   feed session state embedded under `"feed"` where one is bound.
//!
//! [`FleetTelemetry`] is the shared state: the supervisor updates it
//! from [`crate::supervise`] at every admission, heartbeat, failure,
//! and terminal transition; [`TelemetryServer`] is a std-only
//! `TcpListener` loop on its own thread (no async runtime, no
//! dependencies) with cooperative shutdown, serving whatever the fleet
//! looks like at scrape time.

use quicksand_obs::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Milliseconds since the process's telemetry epoch (first call), plus
/// one — so `0` unambiguously means "never" in beat timestamps.
pub fn monotonic_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64 + 1
}

/// Lifecycle state of one supervised cell, as the scrape page tells it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CellState {
    /// Admitted, not yet dispatched.
    Pending = 0,
    /// An attempt is executing.
    Running = 1,
    /// Between attempts, sleeping out the restart backoff.
    Backoff = 2,
    /// Terminal: the month completed.
    Completed = 3,
    /// Terminal: restart budget exhausted.
    Quarantined = 4,
    /// Terminal: supervision infrastructure failed.
    Failed = 5,
}

impl CellState {
    /// Stable lowercase name (`"running"`, `"quarantined"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            CellState::Pending => "pending",
            CellState::Running => "running",
            CellState::Backoff => "backoff",
            CellState::Completed => "completed",
            CellState::Quarantined => "quarantined",
            CellState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> CellState {
        match v {
            1 => CellState::Running,
            2 => CellState::Backoff,
            3 => CellState::Completed,
            4 => CellState::Quarantined,
            5 => CellState::Failed,
            _ => CellState::Pending,
        }
    }

    /// True for states a cell never leaves.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            CellState::Completed | CellState::Quarantined | CellState::Failed
        )
    }
}

/// FSM state of one streaming feed session (DESIGN.md §14): `Idle`
/// between connections, `Connect` while the handshake is in flight,
/// `Established` while events stream. A reaped or disconnected session
/// returns to `Idle` and waits out the graceful-restart window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SessionState {
    /// No peer connected.
    Idle = 0,
    /// A peer connected, handshake (Open/Resume) not yet complete.
    Connect = 1,
    /// Events streaming; the hold timer is armed.
    Established = 2,
}

impl SessionState {
    /// Stable lowercase name (`"idle"`, `"connect"`, `"established"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Idle => "idle",
            SessionState::Connect => "connect",
            SessionState::Established => "established",
        }
    }

    fn from_u8(v: u8) -> SessionState {
        match v {
            1 => SessionState::Connect,
            2 => SessionState::Established,
            _ => SessionState::Idle,
        }
    }
}

/// Live view of one feed session, updated by the feed server's session
/// threads and read by the scrape endpoint. All fields are atomics, so
/// scraping never blocks ingest.
pub struct FeedSessionTelemetry {
    /// The supervised cell this feed drives, if any (MRT sink sessions
    /// have no cell).
    pub cell: Option<usize>,
    /// The peer label from the session's `Open` handshake binding.
    pub peer: String,
    hold_ms: AtomicU64,
    state: AtomicU8,
    last_frame_ms: AtomicU64,
    acked: AtomicU64,
    connects: AtomicU64,
    reaps: AtomicU64,
    last_reap_cursor: AtomicU64,
    dead_letters: AtomicU64,
    eof: AtomicBool,
}

impl FeedSessionTelemetry {
    pub(crate) fn new(cell: Option<usize>, peer: String, hold_ms: u64) -> FeedSessionTelemetry {
        FeedSessionTelemetry {
            cell,
            peer,
            hold_ms: AtomicU64::new(hold_ms),
            state: AtomicU8::new(SessionState::Idle as u8),
            // Registration counts as activity: a binding nobody has
            // connected to yet ages from now, not from the epoch.
            last_frame_ms: AtomicU64::new(monotonic_ms()),
            acked: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            reaps: AtomicU64::new(0),
            last_reap_cursor: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
            eof: AtomicBool::new(false),
        }
    }

    /// Transition the session FSM; entering any connected state also
    /// counts as frame activity.
    pub fn set_state(&self, state: SessionState) {
        self.state.store(state as u8, Ordering::Release);
        if state != SessionState::Idle {
            self.touch();
        }
    }

    /// Publish the negotiated hold time (BGP-style: the smaller of the
    /// server's configured hold and the client's proposal).
    pub fn set_hold_ms(&self, hold_ms: u64) {
        self.hold_ms.store(hold_ms, Ordering::Release);
    }

    /// Record frame activity (any frame refreshes the hold timer).
    pub fn touch(&self) {
        self.last_frame_ms.store(monotonic_ms(), Ordering::Release);
    }

    /// Publish the cumulative acknowledged cursor.
    pub fn set_acked(&self, acked: u64) {
        self.acked.store(acked, Ordering::Release);
    }

    /// Count a (re)connection.
    pub fn on_connect(&self) {
        self.connects.fetch_add(1, Ordering::AcqRel);
    }

    /// Count a hold-timer reap at the given acknowledged cursor.
    pub fn on_reap(&self, cursor: u64) {
        self.last_reap_cursor.store(cursor, Ordering::Release);
        self.reaps.fetch_add(1, Ordering::AcqRel);
    }

    /// Count a quarantined malformed frame / protocol violation.
    pub fn on_dead_letter(&self) {
        self.dead_letters.fetch_add(1, Ordering::AcqRel);
    }

    /// Mark the feed complete (EOF accepted); complete sessions are
    /// excluded from staleness health.
    pub fn set_eof(&self) {
        self.eof.store(true, Ordering::Release);
    }

    /// Current FSM state.
    pub fn state(&self) -> SessionState {
        SessionState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// The session's hold time in wall milliseconds.
    pub fn hold_ms(&self) -> u64 {
        self.hold_ms.load(Ordering::Acquire)
    }

    /// Milliseconds since the last frame (or registration).
    pub fn staleness_ms(&self) -> u64 {
        monotonic_ms().saturating_sub(self.last_frame_ms.load(Ordering::Acquire))
    }

    /// Cumulative acknowledged cursor.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Total (re)connections.
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Acquire)
    }

    /// Total hold-timer reaps.
    pub fn reaps(&self) -> u64 {
        self.reaps.load(Ordering::Acquire)
    }

    /// The acknowledged cursor at the most recent reap.
    pub fn last_reap_cursor(&self) -> u64 {
        self.last_reap_cursor.load(Ordering::Acquire)
    }

    /// Total dead-lettered frames.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters.load(Ordering::Acquire)
    }

    /// True once EOF was accepted.
    pub fn eof(&self) -> bool {
        self.eof.load(Ordering::Acquire)
    }

    /// True while the session counts toward staleness health: not yet
    /// complete and silent past its hold time.
    pub fn past_hold(&self) -> bool {
        !self.eof() && self.staleness_ms() > self.hold_ms()
    }
}

/// Live view of one cell, updated by the supervisor and read by the
/// scrape endpoint. All fields are atomics (or a registry swap under a
/// mutex), so readers never block a replaying cell.
pub struct CellTelemetry {
    /// Cell id (admission order).
    pub id: usize,
    /// The job's display label.
    pub label: String,
    registry: Mutex<Option<Arc<Registry>>>,
    state: AtomicU8,
    beat_ms: AtomicU64,
    cursor: AtomicU64,
    restarts: AtomicU64,
    trips: AtomicU64,
}

impl CellTelemetry {
    fn new(id: usize, label: String) -> CellTelemetry {
        CellTelemetry {
            id,
            label,
            registry: Mutex::new(None),
            state: AtomicU8::new(CellState::Pending as u8),
            beat_ms: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    /// Publish the registry the current attempt is recording into; the
    /// scrape endpoint renders it under this cell's labels.
    pub fn set_registry(&self, registry: Arc<Registry>) {
        *self.registry.lock().unwrap_or_else(|e| e.into_inner()) = Some(registry);
    }

    /// Transition the lifecycle state; entering `Running` also counts
    /// as a heartbeat (a freshly dispatched cell is not yet stale).
    pub fn set_state(&self, state: CellState) {
        self.state.store(state as u8, Ordering::Release);
        if state == CellState::Running {
            self.beat_ms.store(monotonic_ms(), Ordering::Release);
        }
    }

    /// Record a heartbeat at `cursor` (a checkpoint boundary).
    pub fn touch(&self, cursor: u64) {
        self.cursor.store(cursor, Ordering::Release);
        self.beat_ms.store(monotonic_ms(), Ordering::Release);
    }

    /// Update the restart / watchdog-trip counts (monotonic).
    pub fn set_counts(&self, restarts: u64, trips: u64) {
        self.restarts.store(restarts, Ordering::Release);
        self.trips.store(trips, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CellState {
        CellState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Last checkpointed cursor.
    pub fn cursor(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Milliseconds since the last heartbeat; `None` before the first.
    pub fn beat_age_ms(&self) -> Option<u64> {
        match self.beat_ms.load(Ordering::Acquire) {
            0 => None,
            at => Some(monotonic_ms().saturating_sub(at)),
        }
    }

    fn registry(&self) -> Option<Arc<Registry>> {
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Everything the scrape endpoint serves: the supervisor registry, the
/// effective watchdog deadline, and one [`CellTelemetry`] per admitted
/// cell. Create with [`FleetTelemetry::new`]; the supervisor owns the
/// writes, any number of [`TelemetryServer`]s (or tests) read.
pub struct FleetTelemetry {
    supervisor: Mutex<Arc<Registry>>,
    deadline_ms: AtomicU64,
    cells: Mutex<Vec<Arc<CellTelemetry>>>,
    feeds: Mutex<Vec<Arc<FeedSessionTelemetry>>>,
}

impl FleetTelemetry {
    /// A fleet view over `supervisor` (the registry the supervisor's
    /// own `supervisor.*` metrics land in).
    pub fn new(supervisor: Arc<Registry>) -> FleetTelemetry {
        FleetTelemetry {
            supervisor: Mutex::new(supervisor),
            deadline_ms: AtomicU64::new(0),
            cells: Mutex::new(Vec::new()),
            feeds: Mutex::new(Vec::new()),
        }
    }

    /// Register an admitted cell; returns its live view.
    pub fn add_cell(&self, id: usize, label: &str) -> Arc<CellTelemetry> {
        let cell = Arc::new(CellTelemetry::new(id, label.to_string()));
        self.cells
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(cell.clone());
        cell
    }

    /// Publish the effective watchdog deadline (drives `/healthz`).
    pub fn set_deadline_ms(&self, deadline_ms: u64) {
        self.deadline_ms.store(deadline_ms, Ordering::Release);
    }

    /// Snapshot the registered cells.
    pub fn cells(&self) -> Vec<Arc<CellTelemetry>> {
        self.cells
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Register a feed session bound to `peer` (optionally driving cell
    /// `cell`) with the given hold time; returns its live view.
    pub fn add_feed_session(
        &self,
        cell: Option<usize>,
        peer: &str,
        hold_ms: u64,
    ) -> Arc<FeedSessionTelemetry> {
        let sess = Arc::new(FeedSessionTelemetry::new(cell, peer.to_string(), hold_ms));
        self.feeds
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(sess.clone());
        sess
    }

    /// Snapshot the registered feed sessions.
    pub fn feed_sessions(&self) -> Vec<Arc<FeedSessionTelemetry>> {
        self.feeds
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn supervisor_registry(&self) -> Arc<Registry> {
        self.supervisor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The `/metrics` page: Prometheus text exposition of the
    /// supervisor registry (unlabeled), synthetic per-cell gauges, and
    /// every cell registry labeled `cell="K"`.
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        self.supervisor_registry().render_prometheus(&mut out, &[]);
        use std::fmt::Write;
        for cell in self.cells() {
            let id = cell.id.to_string();
            let labels = format!(
                "{{cell=\"{}\",label=\"{}\"}}",
                id,
                escape_label(&cell.label)
            );
            let state = cell.state();
            let _ = writeln!(
                out,
                "quicksand_cell_state{{cell=\"{}\",label=\"{}\",state=\"{}\"}} 1",
                id,
                escape_label(&cell.label),
                state.as_str()
            );
            let _ = writeln!(
                out,
                "quicksand_cell_beat_age_ms{labels} {}",
                cell.beat_age_ms().unwrap_or(0)
            );
            let _ = writeln!(out, "quicksand_cell_cursor{labels} {}", cell.cursor());
            let _ = writeln!(
                out,
                "quicksand_cell_restarts_total{labels} {}",
                cell.restarts.load(Ordering::Acquire)
            );
            let _ = writeln!(
                out,
                "quicksand_cell_watchdog_trips_total{labels} {}",
                cell.trips.load(Ordering::Acquire)
            );
            if let Some(reg) = cell.registry() {
                reg.render_prometheus(
                    &mut out,
                    &[("cell", &id), ("label", &cell.label)],
                );
            }
        }
        for sess in self.feed_sessions() {
            let peer = escape_label(&sess.peer);
            let labels = format!("{{peer=\"{peer}\"}}");
            let _ = writeln!(
                out,
                "quicksand_feed_state{{peer=\"{peer}\",state=\"{}\"}} 1",
                sess.state().as_str()
            );
            let _ = writeln!(
                out,
                "quicksand_feed_staleness_ms{labels} {}",
                sess.staleness_ms()
            );
            let _ = writeln!(out, "quicksand_feed_acked{labels} {}", sess.acked());
            let _ = writeln!(
                out,
                "quicksand_feed_connects_total{labels} {}",
                sess.connects()
            );
            let _ = writeln!(out, "quicksand_feed_reaps_total{labels} {}", sess.reaps());
            let _ = writeln!(
                out,
                "quicksand_feed_dead_letters_total{labels} {}",
                sess.dead_letters()
            );
            let _ = writeln!(out, "quicksand_feed_eof{labels} {}", u64::from(sess.eof()));
        }
        out
    }

    /// The `/healthz` verdict: `(healthy, body)`. Healthy while every
    /// *running* cell has beaten within 2× the watchdog deadline (the
    /// watchdog itself needs one full deadline to trip; the probe only
    /// alarms when even that failed) AND, when feed sessions exist, at
    /// least one incomplete session is still within its hold time
    /// (graceful restart tolerates individual peers dropping; the probe
    /// alarms only when *every* live feed has gone silent past hold). A
    /// fleet with no running cells and no live feeds is vacuously
    /// healthy.
    pub fn healthz(&self) -> (bool, String) {
        let deadline = self.deadline_ms.load(Ordering::Acquire).max(1);
        let mut stale = Vec::new();
        for cell in self.cells() {
            if cell.state() != CellState::Running {
                continue;
            }
            // A running cell that never beat is aged from dispatch
            // (set_state(Running) touched the beat), so this is Some.
            let age = cell.beat_age_ms().unwrap_or(u64::MAX);
            if age > deadline.saturating_mul(2) {
                stale.push(format!("cell {} stale for {}ms", cell.id, age));
            }
        }
        let live: Vec<Arc<FeedSessionTelemetry>> = self
            .feed_sessions()
            .into_iter()
            .filter(|s| !s.eof())
            .collect();
        if !live.is_empty() && live.iter().all(|s| s.past_hold()) {
            for sess in &live {
                stale.push(format!(
                    "feed {} silent for {}ms (hold {}ms)",
                    sess.peer,
                    sess.staleness_ms(),
                    sess.hold_ms()
                ));
            }
        }
        if stale.is_empty() {
            (true, "ok\n".to_string())
        } else {
            (false, format!("stale\n{}\n", stale.join("\n")))
        }
    }

    /// The `/cells` page: a JSON array, one object per cell. A cell
    /// driven by a streaming feed session embeds that session's state
    /// under a `"feed"` key.
    pub fn render_cells_json(&self) -> String {
        let feeds = self.feed_sessions();
        let mut out = String::from("[");
        for (i, cell) in self.cells().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cell\":{},\"label\":\"{}\",\"state\":\"{}\",\"cursor\":{},\
                 \"beat_age_ms\":{},\"restarts\":{},\"watchdog_trips\":{}",
                cell.id,
                escape_json(&cell.label),
                cell.state().as_str(),
                cell.cursor(),
                cell.beat_age_ms().map_or(-1, |a| a as i64),
                cell.restarts.load(Ordering::Acquire),
                cell.trips.load(Ordering::Acquire),
            ));
            if let Some(sess) = feeds.iter().find(|s| s.cell == Some(cell.id)) {
                out.push_str(&format!(",\"feed\":{}", feed_session_json(sess)));
            }
            out.push('}');
        }
        out.push_str("]\n");
        out
    }
}

fn feed_session_json(sess: &FeedSessionTelemetry) -> String {
    format!(
        "{{\"peer\":\"{}\",\"state\":\"{}\",\"acked\":{},\"staleness_ms\":{},\
         \"hold_ms\":{},\"connects\":{},\"reaps\":{},\"last_reap_cursor\":{},\
         \"dead_letters\":{},\"eof\":{}}}",
        escape_json(&sess.peer),
        sess.state().as_str(),
        sess.acked(),
        sess.staleness_ms(),
        sess.hold_ms(),
        sess.connects(),
        sess.reaps(),
        sess.last_reap_cursor(),
        sess.dead_letters(),
        sess.eof(),
    )
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The scrape server: one `TcpListener` accept loop on its own thread,
/// serving [`FleetTelemetry`] snapshots. Std-only — requests are
/// handled serially (a scrape is a handful of reads and one write),
/// and shutdown is cooperative: [`TelemetryServer::stop`] flips a flag
/// and self-connects to unblock `accept`.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port)
    /// and start serving `fleet` in a background thread.
    pub fn start(
        addr: impl ToSocketAddrs,
        fleet: Arc<FleetTelemetry>,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_ref = stop.clone();
        let handle = std::thread::Builder::new()
            .name("telemetry-scrape".into())
            .spawn(move || serve_loop(listener, fleet, stop_ref))?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serve thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, fleet: Arc<FleetTelemetry>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A stuck client must not wedge the scrape plane.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_conn(stream, &fleet);
    }
}

fn handle_conn(stream: TcpStream, fleet: &FleetTelemetry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let path = request_line
        .strip_prefix("GET ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            fleet.render_metrics(),
        ),
        "/healthz" => {
            let (healthy, body) = fleet.healthz();
            (
                if healthy { "200 OK" } else { "503 Service Unavailable" },
                "text/plain; charset=utf-8",
                body,
            )
        }
        "/cells" => ("200 OK", "application/json", fleet.render_cells_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Blocking HTTP GET against a local scrape endpoint: `(status, body)`.
/// Test/CI helper — two-second timeouts, no redirects, no TLS.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_obs::Key;

    fn fleet_with_one_cell() -> (Arc<FleetTelemetry>, Arc<CellTelemetry>) {
        let reg = Arc::new(Registry::new());
        reg.incr(Key::stage("supervisor", "cells"), 1);
        reg.gauge(Key::stage("supervisor", "width"), 4.0);
        let fleet = Arc::new(FleetTelemetry::new(reg));
        fleet.set_deadline_ms(2_000);
        let cell = fleet.add_cell(0, "alpha \"quoted\"");
        let cell_reg = Arc::new(Registry::new());
        cell_reg.incr(Key::stage("churn", "events"), 42);
        cell.set_registry(cell_reg);
        cell.set_state(CellState::Running);
        cell.touch(75);
        (fleet, cell)
    }

    #[test]
    fn metrics_page_carries_supervisor_and_labeled_cell_series() {
        let (fleet, _cell) = fleet_with_one_cell();
        let page = fleet.render_metrics();
        assert!(page.contains("quicksand_supervisor_cells_total 1"));
        assert!(page.contains("quicksand_supervisor_width 4"));
        assert!(page.contains("state=\"running\""));
        assert!(page.contains("quicksand_cell_cursor{cell=\"0\","));
        // The cell registry appears under the cell label, escaped.
        assert!(page.contains(
            "quicksand_churn_events_total{cell=\"0\",label=\"alpha \\\"quoted\\\"\"} 42"
        ));
        // Every line is `name value` or `name{labels} value`.
        for line in page.lines() {
            let (series, value) = line.rsplit_once(' ').expect("two columns");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            if let Some(open) = series.find('{') {
                assert!(series.ends_with('}'), "unclosed labels in {line:?}");
                assert!(series[..open].chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            }
        }
    }

    #[test]
    fn healthz_flips_on_stale_running_cells_only() {
        let (fleet, cell) = fleet_with_one_cell();
        assert!(fleet.healthz().0, "fresh running cell is healthy");
        // Shrink the deadline and let the beat actually age past 2×.
        fleet.set_deadline_ms(1);
        std::thread::sleep(Duration::from_millis(10));
        let (healthy, body) = fleet.healthz();
        assert!(!healthy);
        assert!(body.contains("cell 0 stale"));
        // Terminal cells are never stale.
        cell.set_state(CellState::Completed);
        assert!(fleet.healthz().0);
    }

    #[test]
    fn cells_json_is_valid_and_complete() {
        let (fleet, cell) = fleet_with_one_cell();
        cell.set_counts(2, 1);
        let json = fleet.render_cells_json();
        let v: serde::Value = serde_json::from_str(json.trim()).expect("valid JSON");
        let cells = v.as_seq().expect("array");
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        let as_u64 = |v: Option<&serde::Value>| match v {
            Some(serde::Value::U64(n)) => Some(*n),
            Some(serde::Value::I64(n)) => Some(*n as u64),
            _ => None,
        };
        assert_eq!(as_u64(c.field("cursor")), Some(75));
        assert_eq!(as_u64(c.field("restarts")), Some(2));
        assert_eq!(
            c.field("state").and_then(|v| v.as_str()),
            Some("running")
        );
    }

    #[test]
    fn server_serves_all_routes_and_stops_cleanly() {
        let (fleet, _cell) = fleet_with_one_cell();
        let mut server =
            TelemetryServer::start("127.0.0.1:0", fleet.clone()).expect("bind localhost");
        let addr = server.local_addr();
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("quicksand_supervisor_cells_total"));
        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        let (status, body) = http_get(addr, "/cells").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with('['));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.stop();
        server.stop(); // idempotent
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "stopped server must not answer"
        );
    }

    #[test]
    fn monotonic_ms_never_reports_zero_or_regresses() {
        let a = monotonic_ms();
        let b = monotonic_ms();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn feed_session_state_round_trips_and_counts() {
        let (fleet, _cell) = fleet_with_one_cell();
        let sess = fleet.add_feed_session(Some(0), "ris-peer", 2_000);
        assert_eq!(sess.state(), SessionState::Idle);
        sess.on_connect();
        sess.set_state(SessionState::Connect);
        sess.set_state(SessionState::Established);
        sess.set_acked(17);
        sess.on_dead_letter();
        sess.on_reap(17);
        assert_eq!(sess.state(), SessionState::Established);
        assert_eq!(sess.acked(), 17);
        assert_eq!(sess.connects(), 1);
        assert_eq!(sess.reaps(), 1);
        assert_eq!(sess.last_reap_cursor(), 17);
        assert_eq!(sess.dead_letters(), 1);
        assert!(!sess.eof());
        for (tag, state) in [
            (0u8, SessionState::Idle),
            (1, SessionState::Connect),
            (2, SessionState::Established),
            (99, SessionState::Idle),
        ] {
            assert_eq!(SessionState::from_u8(tag), state);
        }
    }

    #[test]
    fn healthz_alarms_only_when_all_live_feeds_pass_hold() {
        let (fleet, _cell) = fleet_with_one_cell();
        // Hold of 0ms: stale as soon as any time passes.
        let a = fleet.add_feed_session(Some(0), "peer-a", 0);
        let b = fleet.add_feed_session(None, "peer-b", 3_600_000);
        std::thread::sleep(Duration::from_millis(5));
        // One fresh session keeps the fleet healthy.
        assert!(fleet.healthz().0, "peer-b within hold keeps healthz ok");
        // Mark the fresh one complete: only the stale one is live.
        b.set_eof();
        let (healthy, body) = fleet.healthz();
        assert!(!healthy, "all live feeds past hold must 503");
        assert!(body.contains("feed peer-a silent"), "body: {body}");
        // Activity on the stale session restores health.
        a.touch();
        assert!(fleet.healthz().0);
        // All sessions complete: vacuously healthy.
        a.set_eof();
        assert!(fleet.healthz().0);
    }

    #[test]
    fn metrics_and_cells_json_carry_feed_series() {
        let (fleet, _cell) = fleet_with_one_cell();
        let sess = fleet.add_feed_session(Some(0), "ris-peer", 2_000);
        sess.set_state(SessionState::Established);
        sess.set_acked(42);
        let page = fleet.render_metrics();
        assert!(page.contains("quicksand_feed_state{peer=\"ris-peer\",state=\"established\"} 1"));
        assert!(page.contains("quicksand_feed_acked{peer=\"ris-peer\"} 42"));
        assert!(page.contains("quicksand_feed_eof{peer=\"ris-peer\"} 0"));
        let json = fleet.render_cells_json();
        let v: serde::Value = serde_json::from_str(json.trim()).expect("valid JSON");
        let cells = v.as_seq().expect("array");
        let feed = cells[0].field("feed").expect("cell 0 embeds its feed");
        assert_eq!(
            feed.field("state").and_then(|v| v.as_str()),
            Some("established")
        );
        assert_eq!(
            match feed.field("acked") {
                Some(serde::Value::U64(n)) => Some(*n),
                Some(serde::Value::I64(n)) => Some(*n as u64),
                _ => None,
            },
            Some(42)
        );
    }
}
