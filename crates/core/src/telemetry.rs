//! Live telemetry plane for the resident fleet: a scrape endpoint.
//!
//! The supervisor (ROADMAP item 3) runs many scenario cells for a long
//! time; operating it requires seeing inside without attaching a
//! debugger. This module publishes the fleet's state over plain HTTP:
//!
//! * `/metrics` — Prometheus text exposition: the supervisor registry
//!   unlabeled, every cell registry labeled `cell="K"`, plus synthetic
//!   per-cell series (state, heartbeat age, cursor, restarts, trips);
//! * `/healthz` — `200 ok` while every running cell has beaten within
//!   2× the watchdog deadline, `503` otherwise (load balancers and CI
//!   probes need a yes/no, not a metrics dump);
//! * `/cells` — one JSON object per cell for humans and scripts.
//!
//! [`FleetTelemetry`] is the shared state: the supervisor updates it
//! from [`crate::supervise`] at every admission, heartbeat, failure,
//! and terminal transition; [`TelemetryServer`] is a std-only
//! `TcpListener` loop on its own thread (no async runtime, no
//! dependencies) with cooperative shutdown, serving whatever the fleet
//! looks like at scrape time.

use quicksand_obs::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Milliseconds since the process's telemetry epoch (first call), plus
/// one — so `0` unambiguously means "never" in beat timestamps.
pub fn monotonic_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64 + 1
}

/// Lifecycle state of one supervised cell, as the scrape page tells it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CellState {
    /// Admitted, not yet dispatched.
    Pending = 0,
    /// An attempt is executing.
    Running = 1,
    /// Between attempts, sleeping out the restart backoff.
    Backoff = 2,
    /// Terminal: the month completed.
    Completed = 3,
    /// Terminal: restart budget exhausted.
    Quarantined = 4,
    /// Terminal: supervision infrastructure failed.
    Failed = 5,
}

impl CellState {
    /// Stable lowercase name (`"running"`, `"quarantined"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            CellState::Pending => "pending",
            CellState::Running => "running",
            CellState::Backoff => "backoff",
            CellState::Completed => "completed",
            CellState::Quarantined => "quarantined",
            CellState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> CellState {
        match v {
            1 => CellState::Running,
            2 => CellState::Backoff,
            3 => CellState::Completed,
            4 => CellState::Quarantined,
            5 => CellState::Failed,
            _ => CellState::Pending,
        }
    }

    /// True for states a cell never leaves.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            CellState::Completed | CellState::Quarantined | CellState::Failed
        )
    }
}

/// Live view of one cell, updated by the supervisor and read by the
/// scrape endpoint. All fields are atomics (or a registry swap under a
/// mutex), so readers never block a replaying cell.
pub struct CellTelemetry {
    /// Cell id (admission order).
    pub id: usize,
    /// The job's display label.
    pub label: String,
    registry: Mutex<Option<Arc<Registry>>>,
    state: AtomicU8,
    beat_ms: AtomicU64,
    cursor: AtomicU64,
    restarts: AtomicU64,
    trips: AtomicU64,
}

impl CellTelemetry {
    fn new(id: usize, label: String) -> CellTelemetry {
        CellTelemetry {
            id,
            label,
            registry: Mutex::new(None),
            state: AtomicU8::new(CellState::Pending as u8),
            beat_ms: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    /// Publish the registry the current attempt is recording into; the
    /// scrape endpoint renders it under this cell's labels.
    pub fn set_registry(&self, registry: Arc<Registry>) {
        *self.registry.lock().unwrap_or_else(|e| e.into_inner()) = Some(registry);
    }

    /// Transition the lifecycle state; entering `Running` also counts
    /// as a heartbeat (a freshly dispatched cell is not yet stale).
    pub fn set_state(&self, state: CellState) {
        self.state.store(state as u8, Ordering::Release);
        if state == CellState::Running {
            self.beat_ms.store(monotonic_ms(), Ordering::Release);
        }
    }

    /// Record a heartbeat at `cursor` (a checkpoint boundary).
    pub fn touch(&self, cursor: u64) {
        self.cursor.store(cursor, Ordering::Release);
        self.beat_ms.store(monotonic_ms(), Ordering::Release);
    }

    /// Update the restart / watchdog-trip counts (monotonic).
    pub fn set_counts(&self, restarts: u64, trips: u64) {
        self.restarts.store(restarts, Ordering::Release);
        self.trips.store(trips, Ordering::Release);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CellState {
        CellState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Last checkpointed cursor.
    pub fn cursor(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Milliseconds since the last heartbeat; `None` before the first.
    pub fn beat_age_ms(&self) -> Option<u64> {
        match self.beat_ms.load(Ordering::Acquire) {
            0 => None,
            at => Some(monotonic_ms().saturating_sub(at)),
        }
    }

    fn registry(&self) -> Option<Arc<Registry>> {
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Everything the scrape endpoint serves: the supervisor registry, the
/// effective watchdog deadline, and one [`CellTelemetry`] per admitted
/// cell. Create with [`FleetTelemetry::new`]; the supervisor owns the
/// writes, any number of [`TelemetryServer`]s (or tests) read.
pub struct FleetTelemetry {
    supervisor: Mutex<Arc<Registry>>,
    deadline_ms: AtomicU64,
    cells: Mutex<Vec<Arc<CellTelemetry>>>,
}

impl FleetTelemetry {
    /// A fleet view over `supervisor` (the registry the supervisor's
    /// own `supervisor.*` metrics land in).
    pub fn new(supervisor: Arc<Registry>) -> FleetTelemetry {
        FleetTelemetry {
            supervisor: Mutex::new(supervisor),
            deadline_ms: AtomicU64::new(0),
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Register an admitted cell; returns its live view.
    pub fn add_cell(&self, id: usize, label: &str) -> Arc<CellTelemetry> {
        let cell = Arc::new(CellTelemetry::new(id, label.to_string()));
        self.cells
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(cell.clone());
        cell
    }

    /// Publish the effective watchdog deadline (drives `/healthz`).
    pub fn set_deadline_ms(&self, deadline_ms: u64) {
        self.deadline_ms.store(deadline_ms, Ordering::Release);
    }

    /// Snapshot the registered cells.
    pub fn cells(&self) -> Vec<Arc<CellTelemetry>> {
        self.cells
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn supervisor_registry(&self) -> Arc<Registry> {
        self.supervisor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The `/metrics` page: Prometheus text exposition of the
    /// supervisor registry (unlabeled), synthetic per-cell gauges, and
    /// every cell registry labeled `cell="K"`.
    pub fn render_metrics(&self) -> String {
        let mut out = String::new();
        self.supervisor_registry().render_prometheus(&mut out, &[]);
        use std::fmt::Write;
        for cell in self.cells() {
            let id = cell.id.to_string();
            let labels = format!(
                "{{cell=\"{}\",label=\"{}\"}}",
                id,
                escape_label(&cell.label)
            );
            let state = cell.state();
            let _ = writeln!(
                out,
                "quicksand_cell_state{{cell=\"{}\",label=\"{}\",state=\"{}\"}} 1",
                id,
                escape_label(&cell.label),
                state.as_str()
            );
            let _ = writeln!(
                out,
                "quicksand_cell_beat_age_ms{labels} {}",
                cell.beat_age_ms().unwrap_or(0)
            );
            let _ = writeln!(out, "quicksand_cell_cursor{labels} {}", cell.cursor());
            let _ = writeln!(
                out,
                "quicksand_cell_restarts_total{labels} {}",
                cell.restarts.load(Ordering::Acquire)
            );
            let _ = writeln!(
                out,
                "quicksand_cell_watchdog_trips_total{labels} {}",
                cell.trips.load(Ordering::Acquire)
            );
            if let Some(reg) = cell.registry() {
                reg.render_prometheus(
                    &mut out,
                    &[("cell", &id), ("label", &cell.label)],
                );
            }
        }
        out
    }

    /// The `/healthz` verdict: `(healthy, body)`. Healthy while every
    /// *running* cell has beaten within 2× the watchdog deadline (the
    /// watchdog itself needs one full deadline to trip; the probe only
    /// alarms when even that failed). A fleet with no running cells is
    /// vacuously healthy.
    pub fn healthz(&self) -> (bool, String) {
        let deadline = self.deadline_ms.load(Ordering::Acquire).max(1);
        let mut stale = Vec::new();
        for cell in self.cells() {
            if cell.state() != CellState::Running {
                continue;
            }
            // A running cell that never beat is aged from dispatch
            // (set_state(Running) touched the beat), so this is Some.
            let age = cell.beat_age_ms().unwrap_or(u64::MAX);
            if age > deadline.saturating_mul(2) {
                stale.push((cell.id, age));
            }
        }
        if stale.is_empty() {
            (true, "ok\n".to_string())
        } else {
            let lines: Vec<String> = stale
                .iter()
                .map(|(id, age)| format!("cell {id} stale for {age}ms"))
                .collect();
            (false, format!("stale\n{}\n", lines.join("\n")))
        }
    }

    /// The `/cells` page: a JSON array, one object per cell.
    pub fn render_cells_json(&self) -> String {
        let mut out = String::from("[");
        for (i, cell) in self.cells().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cell\":{},\"label\":\"{}\",\"state\":\"{}\",\"cursor\":{},\
                 \"beat_age_ms\":{},\"restarts\":{},\"watchdog_trips\":{}}}",
                cell.id,
                escape_json(&cell.label),
                cell.state().as_str(),
                cell.cursor(),
                cell.beat_age_ms().map_or(-1, |a| a as i64),
                cell.restarts.load(Ordering::Acquire),
                cell.trips.load(Ordering::Acquire),
            ));
        }
        out.push_str("]\n");
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The scrape server: one `TcpListener` accept loop on its own thread,
/// serving [`FleetTelemetry`] snapshots. Std-only — requests are
/// handled serially (a scrape is a handful of reads and one write),
/// and shutdown is cooperative: [`TelemetryServer::stop`] flips a flag
/// and self-connects to unblock `accept`.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port)
    /// and start serving `fleet` in a background thread.
    pub fn start(
        addr: impl ToSocketAddrs,
        fleet: Arc<FleetTelemetry>,
    ) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_ref = stop.clone();
        let handle = std::thread::Builder::new()
            .name("telemetry-scrape".into())
            .spawn(move || serve_loop(listener, fleet, stop_ref))?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serve thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, fleet: Arc<FleetTelemetry>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // A stuck client must not wedge the scrape plane.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_conn(stream, &fleet);
    }
}

fn handle_conn(stream: TcpStream, fleet: &FleetTelemetry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let path = request_line
        .strip_prefix("GET ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            fleet.render_metrics(),
        ),
        "/healthz" => {
            let (healthy, body) = fleet.healthz();
            (
                if healthy { "200 OK" } else { "503 Service Unavailable" },
                "text/plain; charset=utf-8",
                body,
            )
        }
        "/cells" => ("200 OK", "application/json", fleet.render_cells_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Blocking HTTP GET against a local scrape endpoint: `(status, body)`.
/// Test/CI helper — two-second timeouts, no redirects, no TLS.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_obs::Key;

    fn fleet_with_one_cell() -> (Arc<FleetTelemetry>, Arc<CellTelemetry>) {
        let reg = Arc::new(Registry::new());
        reg.incr(Key::stage("supervisor", "cells"), 1);
        reg.gauge(Key::stage("supervisor", "width"), 4.0);
        let fleet = Arc::new(FleetTelemetry::new(reg));
        fleet.set_deadline_ms(2_000);
        let cell = fleet.add_cell(0, "alpha \"quoted\"");
        let cell_reg = Arc::new(Registry::new());
        cell_reg.incr(Key::stage("churn", "events"), 42);
        cell.set_registry(cell_reg);
        cell.set_state(CellState::Running);
        cell.touch(75);
        (fleet, cell)
    }

    #[test]
    fn metrics_page_carries_supervisor_and_labeled_cell_series() {
        let (fleet, _cell) = fleet_with_one_cell();
        let page = fleet.render_metrics();
        assert!(page.contains("quicksand_supervisor_cells_total 1"));
        assert!(page.contains("quicksand_supervisor_width 4"));
        assert!(page.contains("state=\"running\""));
        assert!(page.contains("quicksand_cell_cursor{cell=\"0\","));
        // The cell registry appears under the cell label, escaped.
        assert!(page.contains(
            "quicksand_churn_events_total{cell=\"0\",label=\"alpha \\\"quoted\\\"\"} 42"
        ));
        // Every line is `name value` or `name{labels} value`.
        for line in page.lines() {
            let (series, value) = line.rsplit_once(' ').expect("two columns");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            if let Some(open) = series.find('{') {
                assert!(series.ends_with('}'), "unclosed labels in {line:?}");
                assert!(series[..open].chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            }
        }
    }

    #[test]
    fn healthz_flips_on_stale_running_cells_only() {
        let (fleet, cell) = fleet_with_one_cell();
        assert!(fleet.healthz().0, "fresh running cell is healthy");
        // Shrink the deadline and let the beat actually age past 2×.
        fleet.set_deadline_ms(1);
        std::thread::sleep(Duration::from_millis(10));
        let (healthy, body) = fleet.healthz();
        assert!(!healthy);
        assert!(body.contains("cell 0 stale"));
        // Terminal cells are never stale.
        cell.set_state(CellState::Completed);
        assert!(fleet.healthz().0);
    }

    #[test]
    fn cells_json_is_valid_and_complete() {
        let (fleet, cell) = fleet_with_one_cell();
        cell.set_counts(2, 1);
        let json = fleet.render_cells_json();
        let v: serde::Value = serde_json::from_str(json.trim()).expect("valid JSON");
        let cells = v.as_seq().expect("array");
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        let as_u64 = |v: Option<&serde::Value>| match v {
            Some(serde::Value::U64(n)) => Some(*n),
            Some(serde::Value::I64(n)) => Some(*n as u64),
            _ => None,
        };
        assert_eq!(as_u64(c.field("cursor")), Some(75));
        assert_eq!(as_u64(c.field("restarts")), Some(2));
        assert_eq!(
            c.field("state").and_then(|v| v.as_str()),
            Some("running")
        );
    }

    #[test]
    fn server_serves_all_routes_and_stops_cleanly() {
        let (fleet, _cell) = fleet_with_one_cell();
        let mut server =
            TelemetryServer::start("127.0.0.1:0", fleet.clone()).expect("bind localhost");
        let addr = server.local_addr();
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("quicksand_supervisor_cells_total"));
        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        let (status, body) = http_get(addr, "/cells").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with('['));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.stop();
        server.stop(); // idempotent
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "stopped server must not answer"
        );
    }

    #[test]
    fn monotonic_ms_never_reports_zero_or_regresses() {
        let a = monotonic_ms();
        let b = monotonic_ms();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
