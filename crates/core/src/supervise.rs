//! Supervised resident engine: fault-isolated multi-scenario runtime.
//!
//! `repro` runs one month and exits; ROADMAP item 3 wants a long-lived
//! process multiplexing many concurrent scenarios. A resident process
//! is only useful if one wedged or panicking scenario cannot take the
//! fleet down, so this module supervises: each submitted scenario runs
//! in its own **fault domain** — a [`ScenarioCell`] on a scoped thread
//! that wraps the checkpointed month replay in `catch_unwind`, beats a
//! heartbeat at every checkpoint boundary, and persists snapshots into
//! its own [`CheckpointStore`]. Around the cells sit:
//!
//! * a **watchdog** ([`WatchdogConfig`]): a supervisor-side thread that
//!   trips when a running cell stops beating past its progress
//!   deadline (derived from the obs registry's measured `replay_rate`
//!   when available, a configured floor otherwise) and cancels the
//!   cell at its next heartbeat;
//! * **bounded queues with explicit backpressure**: admissions beyond
//!   [`SuperviseConfig::queue_cap`] are *shed* ([`Admission::Shed`]) —
//!   reject-new before degrade-running — and completed-cell results
//!   flow through a bounded channel, so a slow consumer backpressures
//!   cells instead of buffering unboundedly;
//! * a **seeded-deterministic restart policy** ([`RestartPolicy`]):
//!   capped exponential backoff with decorrelated jitter where every
//!   delay and every restart-vs-quarantine decision is a pure function
//!   of `(policy seed, cell id, failure trace)`; a cell that exhausts
//!   its restart budget is **quarantined**, never retried, and never
//!   allowed to disturb its neighbours.
//!
//! A restarted attempt resumes from the newest valid checkpoint in the
//! cell's store (corrupt files are skipped by the store itself), and
//! resume-exactness (DESIGN.md §9) guarantees the completed
//! `MonthResult` is bitwise-identical to an uninterrupted serial run —
//! the crash-storm gate in `tests/chaos.rs` enforces exactly that.
//! Supervisor state is published under the `supervisor` obs stage and
//! folded into the `supervisor` section of the run report
//! (DESIGN.md §12).

use crate::feed::FeedSlot;
use crate::scenario::{MonthResult, Scenario, ScenarioConfig};
use crate::telemetry::{CellState, CellTelemetry, FleetTelemetry};
use quicksand_bgp::{CrashKind, ReplayChaosPlan};
use quicksand_net::QuicksandError;
use quicksand_obs as obs;
use quicksand_obs::{Key, Registry};
use quicksand_recover::{CheckpointStore, HookAction, DEFAULT_RETAIN};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The obs stage every supervisor metric and event is published under.
pub const STAGE: &str = "supervisor";

/// How one replay attempt inside a cell failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The attempt panicked; `catch_unwind` contained it.
    Panic,
    /// The watchdog tripped (no heartbeat within the progress
    /// deadline) and cancelled the attempt at its next checkpoint.
    Stall,
    /// The attempt returned a typed pipeline error (bad configuration,
    /// checkpoint-save failure, resume mismatch).
    Error,
}

impl FailureKind {
    /// Stable tag mixed into the jitter hash, so the backoff schedule
    /// depends on the failure *trace*, not just its length.
    fn tag(self) -> u64 {
        match self {
            FailureKind::Panic => 0x50,
            FailureKind::Stall => 0x57,
            FailureKind::Error => 0x5E,
        }
    }
}

/// One recorded failure of a cell attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// Which attempt failed (0 = first run).
    pub attempt: u32,
    /// The last fully-checkpointed cursor before the failure.
    pub cursor: u64,
    /// How it failed.
    pub kind: FailureKind,
    /// Human-readable detail (panic payload, error display).
    pub detail: String,
}

/// What the policy says to do after a failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartDecision {
    /// Restart (attempt number `attempt`) after `after_ms` of backoff.
    Restart {
        /// The attempt number the restart begins (1 = first restart).
        attempt: u32,
        /// Backoff before the restart, milliseconds.
        after_ms: u64,
    },
    /// The restart budget is exhausted: isolate the cell for good.
    Quarantine,
}

/// Capped exponential backoff with decorrelated jitter, restart budget
/// included — and fully deterministic.
///
/// Every quantity is a pure function of `(seed, cell, failure trace)`:
/// the jitter draw for restart *k* hashes the policy seed, the cell
/// id, the attempt index, and the *kind* of every failure so far, via
/// the same splitmix64 construction the fault layer uses. Two
/// supervisors replaying the same failure trace therefore produce
/// byte-identical restart timelines — the property
/// `crates/core/tests/proptest_supervise.rs` pins down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// First backoff, and the floor of every jittered draw (ms).
    pub base_ms: u64,
    /// Ceiling of every backoff (ms).
    pub cap_ms: u64,
    /// How many restarts a cell may consume before quarantine.
    pub max_restarts: u32,
    /// Seed for the decorrelated jitter.
    pub seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            base_ms: 25,
            cap_ms: 400,
            max_restarts: 3,
            seed: 0x5EED_BACC,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl RestartPolicy {
    /// The backoff before the restart that answers the last failure in
    /// `trace`: decorrelated jitter (`sleep_k` drawn from
    /// `[base, min(cap, 3·sleep_{k−1})]`), iterated over the whole
    /// trace so the schedule is a pure function of it.
    pub fn backoff_ms(&self, cell: u64, trace: &[FailureKind]) -> u64 {
        let base = self.base_ms.max(1);
        let cap = self.cap_ms.max(base);
        let mut prev = base;
        for (k, kind) in trace.iter().enumerate() {
            let h = splitmix64(
                self.seed
                    ^ splitmix64(cell ^ 0xCE11)
                    ^ splitmix64((k as u64) << 8 | kind.tag()),
            );
            let hi = prev.saturating_mul(3).clamp(base, cap);
            prev = base + h % (hi - base + 1);
        }
        prev.min(cap)
    }

    /// The decision after the failures in `trace` (the last element is
    /// the one just suffered): restart with the jittered backoff, or
    /// quarantine once the budget is spent. Pure in `(seed, cell,
    /// trace)`.
    pub fn decide(&self, cell: u64, trace: &[FailureKind]) -> RestartDecision {
        let failures = trace.len() as u32;
        assert!(failures > 0, "a decision needs at least one failure");
        if failures > self.max_restarts {
            RestartDecision::Quarantine
        } else {
            RestartDecision::Restart {
                attempt: failures,
                after_ms: self.backoff_ms(cell, trace),
            }
        }
    }

    /// The full restart timeline for a failure trace: one decision per
    /// failure, in order. Same trace ⇒ identical timeline.
    pub fn schedule(&self, cell: u64, trace: &[FailureKind]) -> Vec<RestartDecision> {
        (1..=trace.len())
            .map(|k| self.decide(cell, &trace[..k]))
            .collect()
    }
}

/// Watchdog configuration: how progress is policed.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// How often the watchdog polls cell heartbeats (ms).
    pub poll_ms: u64,
    /// Progress-deadline floor: a running cell that has not beaten for
    /// this long is tripped (ms).
    pub deadline_ms: u64,
    /// Safety factor over the registry-derived expected
    /// checkpoint-to-checkpoint time.
    pub grace: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            poll_ms: 25,
            deadline_ms: 2_000,
            grace: 8.0,
        }
    }
}

impl WatchdogConfig {
    /// The effective progress deadline: the configured floor, raised to
    /// `grace ×` the expected time between checkpoints whenever the
    /// obs registry has a measured `churn.replay_rate` (events/s) from
    /// an earlier replay in this process — slow hardware widens the
    /// deadline instead of tripping healthy cells.
    pub fn effective_deadline_ms(&self, registry: &Registry, checkpoint_every: u64) -> u64 {
        let derived = registry
            .gauge_value(Key::stage("churn", "replay_rate"))
            .filter(|rate| *rate > 0.0)
            .map(|rate| (checkpoint_every.max(1) as f64 / rate * 1000.0 * self.grace) as u64)
            .unwrap_or(0);
        self.deadline_ms.max(derived)
    }
}

/// Supervisor-wide configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperviseConfig {
    /// Concurrent cells (fault domains running at once).
    pub width: usize,
    /// Admission bound: submissions past this many *pending* jobs are
    /// shed. Load-shedding is strictly reject-new — running cells are
    /// never degraded to make room.
    pub queue_cap: usize,
    /// Bound on buffered completed-cell results: when the consumer
    /// falls behind, finishing cells block (backpressure) rather than
    /// buffer without bound.
    pub results_cap: usize,
    /// Checkpoint every N fully-processed churn events (also the
    /// heartbeat granularity). Must be > 0 for supervision to observe
    /// progress.
    pub checkpoint_every: u64,
    /// Checkpoints retained per cell store.
    pub retain: usize,
    /// Restart policy.
    pub restart: RestartPolicy,
    /// Watchdog policy.
    pub watchdog: WatchdogConfig,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            width: 4,
            queue_cap: 16,
            results_cap: 4,
            checkpoint_every: 25,
            retain: DEFAULT_RETAIN,
            restart: RestartPolicy::default(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// One scenario submitted to the supervisor.
#[derive(Clone, Debug)]
pub struct ScenarioJob {
    /// Display label (also used in events).
    pub label: String,
    /// The scenario to run.
    pub config: ScenarioConfig,
    /// Checkpoint directory for this cell. `None` disables persistence
    /// (restarts then replay from the start — still exact, just
    /// slower).
    pub store_dir: Option<PathBuf>,
    /// Scripted crash injection (tests/chaos smoke). `None` in
    /// production.
    pub chaos: Option<ReplayChaosPlan>,
    /// Streamed ingest: when set, the cell replays churn from this
    /// feed slot (fed by a [`crate::feed::FeedServer`] session)
    /// instead of generating the schedule locally. The replay loop is
    /// identical either way, so a feed that streams the generated
    /// schedule yields a bitwise-identical [`MonthResult`].
    pub feed: Option<Arc<FeedSlot>>,
    /// After a streamed run completes, re-run the month from the
    /// locally generated schedule and compare fingerprints
    /// ([`crate::feed::month_fnv`] plus the cleaned log), publishing
    /// `feed.identity_ok` / `feed.identity_mismatch` on the
    /// supervisor's registry. Ignored without `feed`.
    pub feed_verify: bool,
}

impl ScenarioJob {
    /// A job with no checkpoint store, no chaos, and no feed.
    pub fn new(label: impl Into<String>, config: ScenarioConfig) -> Self {
        ScenarioJob {
            label: label.into(),
            config,
            store_dir: None,
            chaos: None,
            feed: None,
            feed_verify: false,
        }
    }
}

/// The admission verdict for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Accepted; the job got this cell id.
    Admitted(usize),
    /// Shed: the pending queue is at capacity. The job was NOT
    /// enqueued; resubmit later or widen the queue.
    Shed,
}

/// Terminal state of one cell.
#[derive(Debug)]
pub enum CellResult {
    /// The scenario completed (possibly after restarts).
    Completed {
        /// The month result — bitwise-identical to an unsupervised
        /// serial run of the same configuration.
        month: MonthResult,
        /// The cell's final metrics registry snapshot (resume-exact
        /// after restarts).
        metrics: obs::Snapshot,
    },
    /// The restart budget was exhausted; the cell is isolated.
    Quarantined {
        /// The failure that spent the last restart.
        last: FailureKind,
    },
    /// Supervision infrastructure failed (e.g. the checkpoint store
    /// could not be opened). Counted as quarantine for exit purposes.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// Everything the supervisor knows about one finished cell.
#[derive(Debug)]
pub struct CellOutcome {
    /// Cell id (admission order).
    pub id: usize,
    /// The job's label.
    pub label: String,
    /// Terminal state.
    pub result: CellResult,
    /// Restarts consumed.
    pub restarts: u32,
    /// Watchdog trips suffered.
    pub watchdog_trips: u64,
    /// Every failure, in order — the cell's failure trace.
    pub failures: Vec<CellFailure>,
    /// Flight-recorder events drained after the *last* failed attempt
    /// (empty when the cell never failed). The same events, sequence
    /// numbers included, are appended to `postmortem-cell<K>.jsonl` in
    /// the cell's store directory when it has one.
    pub last_telemetry: Vec<obs::Event>,
}

impl CellOutcome {
    /// True when the cell completed but needed restarts or tripped the
    /// watchdog on the way — it ran *degraded*.
    pub fn degraded(&self) -> bool {
        matches!(self.result, CellResult::Completed { .. })
            && (self.restarts > 0 || self.watchdog_trips > 0)
    }
}

/// The fleet-level outcome of one supervised run.
#[derive(Debug)]
pub struct SupervisorOutcome {
    /// Per-cell outcomes, indexed by cell id.
    pub cells: Vec<CellOutcome>,
    /// Submissions shed at admission.
    pub shed: u64,
}

impl SupervisorOutcome {
    /// Number of cells that completed.
    pub fn completed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.result, CellResult::Completed { .. }))
            .count()
    }

    /// Number of cells quarantined (or failed at the infrastructure
    /// level, which is treated the same).
    pub fn quarantined(&self) -> usize {
        self.cells.len() - self.completed()
    }

    /// True when any cell ended quarantined/failed — `repro serve`
    /// maps this to exit code 4.
    pub fn any_quarantined(&self) -> bool {
        self.quarantined() > 0
    }
}

/// Heartbeat block shared between a cell and the watchdog.
///
/// `seq` advances on every checkpoint boundary and state change; the
/// watchdog trips a cell whose `seq` stands still past the progress
/// deadline while the cell claims to be running, setting `cancel` so
/// the cell's hook stops the attempt at the next opportunity.
#[derive(Debug, Default)]
struct CellBeat {
    seq: AtomicU64,
    cursor: AtomicU64,
    running: AtomicBool,
    cancel: AtomicBool,
    trips: AtomicU64,
}

impl CellBeat {
    fn beat(&self, cursor: u64) {
        self.cursor.store(cursor, Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    fn set_running(&self, running: bool) {
        self.running.store(running, Ordering::Release);
        self.seq.fetch_add(1, Ordering::AcqRel);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    fn trip(&self) {
        self.cancel.store(true, Ordering::Release);
        self.trips.fetch_add(1, Ordering::AcqRel);
    }

    fn clear_cancel(&self) {
        self.cancel.store(false, Ordering::Release);
    }
}

/// One fault domain: a scenario plus its heartbeat, store, chaos plan,
/// and restart accounting, executed by [`Supervisor::run`] on its own
/// scoped thread.
struct ScenarioCell<'a> {
    id: usize,
    job: ScenarioJob,
    cfg: &'a SuperviseConfig,
    beat: Arc<CellBeat>,
    parent: Arc<Registry>,
    telem: Arc<CellTelemetry>,
    /// The sink active on the thread that called [`Supervisor::run`]
    /// (thread-local sinks would otherwise be invisible from the cell's
    /// scoped thread); fanned out with the per-attempt flight recorder.
    outer_sink: Option<Arc<dyn obs::Subscriber>>,
}

impl ScenarioCell<'_> {
    fn emit(&self, name: &'static str, message: String, cursor: u64) {
        if obs::enabled(obs::Level::Warn) {
            obs::emit(
                obs::Event::new(obs::Level::Warn, STAGE, name, message)
                    .with("cell", self.id as u64)
                    .with("label", self.job.label.clone())
                    .with("cursor", cursor),
            );
        }
    }

    /// Run the cell to its terminal state. Panics from the scenario are
    /// contained here; nothing escapes to the supervisor except the
    /// outcome.
    fn run(self) -> CellOutcome {
        let store = match self
            .job
            .store_dir
            .as_ref()
            .map(|d| CheckpointStore::open(d, self.cfg.retain))
            .transpose()
        {
            Ok(s) => s,
            Err(e) => {
                self.parent.incr(Key::stage(STAGE, "failed"), 1);
                self.telem.set_state(CellState::Failed);
                return CellOutcome {
                    id: self.id,
                    label: self.job.label.clone(),
                    result: CellResult::Failed {
                        error: format!("cannot open checkpoint store: {e}"),
                    },
                    restarts: 0,
                    watchdog_trips: 0,
                    failures: Vec::new(),
                    last_telemetry: Vec::new(),
                };
            }
        };
        let scenario = Scenario::build(self.job.config.clone());
        let mut trace: Vec<FailureKind> = Vec::new();
        let mut failures: Vec<CellFailure> = Vec::new();
        let mut last_telemetry: Vec<obs::Event> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            self.beat.clear_cancel();
            self.beat.set_running(true);
            let cell_reg = Arc::new(Registry::new());
            self.telem.set_registry(cell_reg.clone());
            self.telem.set_state(CellState::Running);
            // The attempt's flight recorder: fanned out with whatever
            // sink is already active so breadcrumbs still reach the
            // console/JSONL stream, but retained here regardless of the
            // outer sink's level filtering (or absence).
            let ring = Arc::new(obs::RingSubscriber::with_capacity(obs::DEFAULT_RING_CAP));
            let sink: Arc<dyn obs::Subscriber> = match &self.outer_sink {
                Some(outer) => Arc::new(obs::FanoutSubscriber::new(vec![
                    outer.clone(),
                    ring.clone(),
                ])),
                None => ring.clone(),
            };
            let mut chaos_fired = false;
            let mut save_error: Option<String> = None;
            let run = catch_unwind(AssertUnwindSafe(|| {
                obs::with_subscriber(sink.clone(), || obs::with_metrics(cell_reg.clone(), || {
                    // Checkpoint-backed start: every attempt (including
                    // the first, for resident restarts over a warm
                    // store) resumes from the newest valid snapshot;
                    // corrupt files are skipped by the store itself.
                    let resume = match &store {
                        Some(s) => s.load_latest().map_err(|e| {
                            QuicksandError::ResumeMismatch {
                                what: "checkpoint store",
                                detail: e.to_string(),
                            }
                        })?,
                        None => None,
                    };
                    let hook = |snap: &quicksand_recover::PipelineSnapshot| {
                            // Persist BEFORE anything can fail, so a
                            // crash at cursor K restarts from K.
                            if let Some(s) = &store {
                                if let Err(e) = s.save(snap) {
                                    save_error = Some(e.to_string());
                                    return HookAction::Stop;
                                }
                            }
                            self.beat.beat(snap.cursor);
                            self.telem.touch(snap.cursor);
                            // Breadcrumb for the flight recorder: the
                            // ring's always-on `enabled` makes Debug
                            // visible here even under a quiet console,
                            // so a post-mortem always carries the
                            // cell's final checkpoints.
                            if obs::enabled(obs::Level::Debug) {
                                obs::emit(
                                    obs::Event::new(
                                        obs::Level::Debug,
                                        STAGE,
                                        "checkpoint",
                                        "checkpoint persisted",
                                    )
                                    .with("cell", self.id as u64)
                                    .with("attempt", attempt)
                                    .with("cursor", snap.cursor),
                                );
                            }
                            if !chaos_fired {
                                if let Some(crash) = self
                                    .job
                                    .chaos
                                    .as_ref()
                                    .and_then(|p| p.fire(attempt, snap.cursor))
                                {
                                    chaos_fired = true;
                                    match crash.kind {
                                        CrashKind::Panic => panic!(
                                            "injected replay panic (cell {}, attempt {attempt}, \
                                             cursor {})",
                                            self.id, snap.cursor
                                        ),
                                        CrashKind::Stall { ms } => {
                                            std::thread::sleep(Duration::from_millis(ms))
                                        }
                                    }
                                }
                            }
                            if self.beat.cancelled() {
                                HookAction::Stop
                            } else {
                                HookAction::Continue
                            }
                        };
                    let resume_snap = resume.as_ref().map(|(snap, _)| snap);
                    match &self.job.feed {
                        None => scenario.run_month_checkpointed(
                            resume_snap,
                            self.cfg.checkpoint_every,
                            hook,
                        ),
                        Some(slot) => {
                            // Streamed ingest: the cell consumes its
                            // feed slot, beating the watchdog on every
                            // poll tick so waiting-for-the-network is
                            // not mistaken for a stall — the slot's own
                            // graceful-restart timer is the typed
                            // escape from a feed that never returns.
                            let beat = &self.beat;
                            let telem = &self.telem;
                            let mut events = slot.churn_iter(|| {
                                let cursor = beat.cursor.load(Ordering::Acquire);
                                beat.beat(cursor);
                                telem.touch(cursor);
                            });
                            scenario.run_month_streamed(
                                &mut events,
                                resume_snap,
                                self.cfg.checkpoint_every,
                                hook,
                            )
                        }
                    }
                }))
            }));
            self.beat.set_running(false);
            let cursor = self.beat.cursor.load(Ordering::Acquire);
            let (kind, detail) = match run {
                Ok(Ok(month)) => {
                    if self.job.feed.is_some() && self.job.feed_verify {
                        // The streamed month must be bitwise-identical
                        // to a batch replay of the same config: re-run
                        // from the locally generated schedule (under a
                        // scratch registry so the verification replay
                        // pollutes no one's metrics) and compare raw-
                        // log fingerprints plus the cleaned log.
                        let scratch = Arc::new(Registry::new());
                        let batch = obs::with_metrics(scratch, || scenario.run_month());
                        let identical = match &batch {
                            Ok(b) => {
                                crate::feed::month_fnv(b) == crate::feed::month_fnv(&month)
                                    && b.cleaned.records == month.cleaned.records
                            }
                            Err(_) => false,
                        };
                        if identical {
                            self.parent
                                .incr(Key::stage(crate::feed::STAGE, "identity_ok"), 1);
                        } else {
                            self.parent.incr(
                                Key::stage(crate::feed::STAGE, "identity_mismatch"),
                                1,
                            );
                            self.emit(
                                "feed-identity-mismatch",
                                format!(
                                    "cell {} streamed month diverges from its batch twin",
                                    self.id
                                ),
                                cursor,
                            );
                        }
                    }
                    self.parent.incr(Key::stage(STAGE, "completed"), 1);
                    self.telem.set_state(CellState::Completed);
                    self.telem.set_counts(
                        attempt as u64,
                        self.beat.trips.load(Ordering::Acquire),
                    );
                    return CellOutcome {
                        id: self.id,
                        label: self.job.label.clone(),
                        result: CellResult::Completed {
                            month,
                            metrics: cell_reg.snapshot(),
                        },
                        restarts: attempt,
                        watchdog_trips: self.beat.trips.load(Ordering::Acquire),
                        failures,
                        last_telemetry,
                    };
                }
                Ok(Err(QuicksandError::Interrupted { events_done })) => {
                    if let Some(e) = save_error.take() {
                        (FailureKind::Error, format!("checkpoint save failed: {e}"))
                    } else {
                        (
                            FailureKind::Stall,
                            format!("watchdog cancelled after {events_done} events"),
                        )
                    }
                }
                Ok(Err(e)) => (FailureKind::Error, e.to_string()),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    (FailureKind::Panic, msg)
                }
            };
            match kind {
                FailureKind::Panic => self.parent.incr(Key::stage(STAGE, "panics"), 1),
                FailureKind::Stall => self.parent.incr(Key::stage(STAGE, "stalls"), 1),
                FailureKind::Error => self.parent.incr(Key::stage(STAGE, "errors"), 1),
            }
            // Drain the flight recorder and write the post-mortem. The
            // footer makes the file non-empty even when the attempt
            // died before its first breadcrumb.
            let drained = ring.drain();
            let footer = obs::Event::new(
                obs::Level::Warn,
                STAGE,
                "postmortem",
                format!("{kind:?}: {detail}"),
            )
            .with("cell", self.id as u64)
            .with("attempt", attempt)
            .with("cursor", cursor);
            if let Some(dir) = &self.job.store_dir {
                let path = dir.join(format!("postmortem-cell{}.jsonl", self.id));
                match obs::ring::write_postmortem(&path, &drained, Some(&footer)) {
                    Ok(()) => self.parent.incr(Key::stage(STAGE, "postmortems"), 1),
                    Err(e) => {
                        self.parent.incr(Key::stage(STAGE, "postmortem_errors"), 1);
                        self.emit(
                            "postmortem-error",
                            format!("cannot write post-mortem: {e}"),
                            cursor,
                        );
                    }
                }
            }
            last_telemetry = drained.into_iter().map(|(_, e)| e).collect();
            last_telemetry.push(footer);
            self.emit("cell-failure", format!("{kind:?}: {detail}"), cursor);
            trace.push(kind);
            failures.push(CellFailure {
                attempt,
                cursor,
                kind,
                detail,
            });
            match self.cfg.restart.decide(self.id as u64, &trace) {
                RestartDecision::Quarantine => {
                    self.parent.incr(Key::stage(STAGE, "quarantined"), 1);
                    self.telem.set_state(CellState::Quarantined);
                    self.telem.set_counts(
                        attempt as u64,
                        self.beat.trips.load(Ordering::Acquire),
                    );
                    self.emit(
                        "cell-quarantined",
                        format!("restart budget exhausted after {} failures", trace.len()),
                        cursor,
                    );
                    return CellOutcome {
                        id: self.id,
                        label: self.job.label.clone(),
                        result: CellResult::Quarantined { last: kind },
                        restarts: attempt,
                        watchdog_trips: self.beat.trips.load(Ordering::Acquire),
                        failures,
                        last_telemetry,
                    };
                }
                RestartDecision::Restart {
                    attempt: next,
                    after_ms,
                } => {
                    self.parent.incr(Key::stage(STAGE, "restarts"), 1);
                    self.telem.set_state(CellState::Backoff);
                    self.telem.set_counts(
                        next as u64,
                        self.beat.trips.load(Ordering::Acquire),
                    );
                    self.emit(
                        "cell-restart",
                        format!("attempt {next} after {after_ms}ms backoff"),
                        cursor,
                    );
                    std::thread::sleep(Duration::from_millis(after_ms));
                    attempt = next;
                }
            }
        }
    }
}

/// The supervisor: a bounded admission queue in front of a
/// width-limited fleet of [`ScenarioCell`]s, plus the watchdog.
///
/// Usage: [`Supervisor::new`], [`Supervisor::submit`] each job
/// (checking for [`Admission::Shed`]), then [`Supervisor::run`] to
/// drive every admitted cell to a terminal state.
pub struct Supervisor {
    cfg: SuperviseConfig,
    queue: Vec<ScenarioJob>,
    shed: u64,
    telemetry: Arc<FleetTelemetry>,
    cell_views: Vec<Arc<CellTelemetry>>,
}

impl Supervisor {
    /// A supervisor with an empty admission queue.
    pub fn new(cfg: SuperviseConfig) -> Supervisor {
        obs::gauge(STAGE, "width", cfg.width.max(1) as f64);
        Supervisor {
            cfg,
            queue: Vec::new(),
            shed: 0,
            telemetry: Arc::new(FleetTelemetry::new(obs::metrics())),
            cell_views: Vec::new(),
        }
    }

    /// Pending (admitted, not yet run) jobs.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The live fleet view the scrape endpoint serves. Clone this
    /// *before* [`Supervisor::run`] consumes the supervisor and hand it
    /// to a [`crate::telemetry::TelemetryServer`]; it stays valid (and
    /// keeps updating) for the whole run.
    pub fn telemetry(&self) -> Arc<FleetTelemetry> {
        self.telemetry.clone()
    }

    /// Admit `job`, or shed it when the queue is at capacity.
    /// Shedding is the explicit load-shedding policy: new work is
    /// rejected *before* any running cell is degraded.
    pub fn submit(&mut self, job: ScenarioJob) -> Admission {
        if self.queue.len() >= self.cfg.queue_cap.max(1) {
            self.shed += 1;
            obs::incr(STAGE, "shed", 1);
            if obs::enabled(obs::Level::Warn) {
                obs::emit(
                    obs::Event::new(
                        obs::Level::Warn,
                        STAGE,
                        "shed",
                        "admission queue full; job rejected",
                    )
                    .with("label", job.label)
                    .with("queue_cap", self.cfg.queue_cap as u64),
                );
            }
            return Admission::Shed;
        }
        let id = self.queue.len();
        obs::incr(STAGE, "cells", 1);
        obs::gauge(STAGE, "queue_depth", (id + 1) as f64);
        self.cell_views.push(self.telemetry.add_cell(id, &job.label));
        self.queue.push(job);
        Admission::Admitted(id)
    }

    /// Drive every admitted job to a terminal state: at most
    /// `width` cells run concurrently; completed cells hand their
    /// outcome through a bounded channel (backpressure, not
    /// unbounded buffering); the watchdog polls heartbeats the whole
    /// time. Returns when the fleet is drained.
    pub fn run(self) -> SupervisorOutcome {
        let Supervisor {
            cfg,
            queue,
            shed,
            telemetry,
            cell_views,
        } = self;
        let n = queue.len();
        let parent = obs::metrics();
        let width = cfg.width.max(1);
        let deadline_ms = cfg
            .watchdog
            .effective_deadline_ms(&parent, cfg.checkpoint_every);
        obs::gauge(STAGE, "watchdog_deadline_ms", deadline_ms as f64);
        telemetry.set_deadline_ms(deadline_ms);
        let outer_sink = obs::subscriber();
        let beats: Vec<Arc<CellBeat>> =
            (0..n).map(|_| Arc::new(CellBeat::default())).collect();
        let done = AtomicBool::new(false);
        let mut outcomes: Vec<Option<CellOutcome>> = Vec::new();
        outcomes.resize_with(n, || None);
        let (tx, rx) = sync_channel::<CellOutcome>(cfg.results_cap.max(1));
        std::thread::scope(|scope| {
            let watchdog_parent = Arc::clone(&parent);
            let beats_ref = &beats;
            let done_ref = &done;
            let wd_cfg = cfg.watchdog.clone();
            scope.spawn(move || {
                watchdog_loop(beats_ref, done_ref, &wd_cfg, deadline_ms, &watchdog_parent)
            });

            let mut jobs: Vec<Option<ScenarioJob>> = queue.into_iter().map(Some).collect();
            let mut next = 0usize;
            let mut running = 0usize;
            let mut finished = 0usize;
            while finished < n {
                while running < width && next < n {
                    let job = jobs[next].take().expect("job dispatched once");
                    let cell = ScenarioCell {
                        id: next,
                        job,
                        cfg: &cfg,
                        beat: Arc::clone(&beats[next]),
                        parent: Arc::clone(&parent),
                        telem: Arc::clone(&cell_views[next]),
                        outer_sink: outer_sink.clone(),
                    };
                    let tx = tx.clone();
                    let parent = Arc::clone(&parent);
                    scope.spawn(move || {
                        let out = cell.run();
                        // Bounded handoff: a full buffer means the
                        // consumer is behind — block (and count the
                        // backpressure) rather than buffer unboundedly.
                        match tx.try_send(out) {
                            Ok(()) => {}
                            Err(TrySendError::Full(out)) => {
                                parent.incr(Key::stage(STAGE, "backpressure_waits"), 1);
                                let _ = tx.send(out);
                            }
                            Err(TrySendError::Disconnected(_)) => {}
                        }
                    });
                    next += 1;
                    running += 1;
                    obs::gauge(STAGE, "queue_depth", (n - next) as f64);
                }
                let out = rx.recv().expect("cells outlive the dispatch loop");
                running -= 1;
                finished += 1;
                let id = out.id;
                outcomes[id] = Some(out);
            }
            done.store(true, Ordering::Release);
        });
        let cells: Vec<CellOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every cell reported"))
            .collect();
        let outcome = SupervisorOutcome { cells, shed };
        obs::gauge(STAGE, "queue_depth", 0.0);
        obs::gauge(STAGE, "degraded", outcome
            .cells
            .iter()
            .filter(|c| c.degraded())
            .count() as f64);
        outcome
    }
}

/// The watchdog: poll heartbeats; a running cell whose sequence number
/// stands still past the deadline is tripped exactly once per stall
/// (the trip cancels the attempt, the cell clears the flag on
/// restart).
fn watchdog_loop(
    beats: &[Arc<CellBeat>],
    done: &AtomicBool,
    cfg: &WatchdogConfig,
    deadline_ms: u64,
    parent: &Registry,
) {
    let deadline = Duration::from_millis(deadline_ms.max(1));
    let mut last_seq: Vec<u64> = beats.iter().map(|b| b.seq.load(Ordering::Acquire)).collect();
    let mut last_change: Vec<Instant> = vec![Instant::now(); beats.len()];
    while !done.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
        for (i, beat) in beats.iter().enumerate() {
            let seq = beat.seq.load(Ordering::Acquire);
            if seq != last_seq[i] {
                last_seq[i] = seq;
                last_change[i] = Instant::now();
                continue;
            }
            if beat.running.load(Ordering::Acquire)
                && !beat.cancelled()
                && last_change[i].elapsed() >= deadline
            {
                beat.trip();
                parent.incr(Key::stage(STAGE, "watchdog_trips"), 1);
                if obs::enabled(obs::Level::Warn) {
                    obs::emit(
                        obs::Event::new(
                            obs::Level::Warn,
                            STAGE,
                            "watchdog-trip",
                            "no heartbeat within the progress deadline; cancelling",
                        )
                        .with("cell", i as u64)
                        .with("deadline_ms", deadline_ms),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_pure_and_capped() {
        let policy = RestartPolicy {
            base_ms: 10,
            cap_ms: 120,
            max_restarts: 5,
            seed: 0xF00D,
        };
        let trace = [
            FailureKind::Panic,
            FailureKind::Stall,
            FailureKind::Panic,
            FailureKind::Error,
        ];
        let a = policy.schedule(3, &trace);
        let b = policy.schedule(3, &trace);
        assert_eq!(a, b, "same (seed, cell, trace) must give one timeline");
        for d in &a {
            match d {
                RestartDecision::Restart { after_ms, .. } => {
                    assert!((10..=120).contains(after_ms), "backoff out of bounds: {after_ms}")
                }
                RestartDecision::Quarantine => panic!("budget 5 covers 4 failures"),
            }
        }
        // The kind of a failure matters, not just the count.
        let other = policy.schedule(3, &[FailureKind::Error, FailureKind::Stall]);
        let same_len = policy.schedule(3, &[FailureKind::Panic, FailureKind::Stall]);
        assert_ne!(other, same_len, "failure kinds must perturb the jitter");
        // Another cell gets a different (but equally deterministic) timeline.
        assert_ne!(policy.schedule(4, &trace), a);
    }

    #[test]
    fn budget_exhaustion_quarantines() {
        let policy = RestartPolicy {
            max_restarts: 2,
            ..RestartPolicy::default()
        };
        let trace = vec![FailureKind::Panic; 3];
        let schedule = policy.schedule(0, &trace);
        assert!(matches!(schedule[0], RestartDecision::Restart { attempt: 1, .. }));
        assert!(matches!(schedule[1], RestartDecision::Restart { attempt: 2, .. }));
        assert_eq!(schedule[2], RestartDecision::Quarantine);
        // Budget 0: the very first failure quarantines.
        let zero = RestartPolicy {
            max_restarts: 0,
            ..RestartPolicy::default()
        };
        assert_eq!(zero.decide(0, &[FailureKind::Stall]), RestartDecision::Quarantine);
    }

    #[test]
    fn admission_sheds_past_the_queue_cap_only() {
        let reg = Arc::new(Registry::new());
        obs::with_metrics(reg.clone(), || {
            let cfg = SuperviseConfig {
                queue_cap: 2,
                ..SuperviseConfig::default()
            };
            let mut sup = Supervisor::new(cfg);
            let job = || ScenarioJob::new("j", ScenarioConfig::small(1));
            assert_eq!(sup.submit(job()), Admission::Admitted(0));
            assert_eq!(sup.submit(job()), Admission::Admitted(1));
            assert_eq!(sup.submit(job()), Admission::Shed);
            assert_eq!(sup.submit(job()), Admission::Shed);
            assert_eq!(sup.pending(), 2, "shed jobs must not be enqueued");
            assert_eq!(sup.shed, 2);
        });
        assert_eq!(reg.counter_value(Key::stage(STAGE, "shed")), 2);
        assert_eq!(reg.counter_value(Key::stage(STAGE, "cells")), 2);
    }

    #[test]
    fn watchdog_trips_a_silent_running_cell_once() {
        let reg = Registry::new();
        let beats = vec![Arc::new(CellBeat::default()), Arc::new(CellBeat::default())];
        // Cell 0 claims to run and then goes silent; cell 1 is idle.
        beats[0].set_running(true);
        let done = AtomicBool::new(false);
        let cfg = WatchdogConfig {
            poll_ms: 5,
            deadline_ms: 30,
            grace: 1.0,
        };
        std::thread::scope(|scope| {
            let beats_ref = &beats;
            let done_ref = &done;
            let reg_ref = &reg;
            let cfg_ref = &cfg;
            scope.spawn(move || watchdog_loop(beats_ref, done_ref, cfg_ref, 30, reg_ref));
            let deadline = Instant::now() + Duration::from_secs(5);
            while !beats[0].cancelled() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Give it a few more polls: the trip must not repeat while
            // the stall persists.
            std::thread::sleep(Duration::from_millis(60));
            done.store(true, Ordering::Release);
        });
        assert!(beats[0].cancelled(), "silent running cell must be cancelled");
        assert_eq!(beats[0].trips.load(Ordering::Acquire), 1, "one trip per stall");
        assert!(!beats[1].cancelled(), "idle cell must not be tripped");
        assert_eq!(reg.counter_value(Key::stage(STAGE, "watchdog_trips")), 1);
    }

    #[test]
    fn effective_deadline_derives_from_measured_replay_rate() {
        let cfg = WatchdogConfig {
            poll_ms: 10,
            deadline_ms: 100,
            grace: 4.0,
        };
        let reg = Registry::new();
        // No measurement: the floor holds.
        assert_eq!(cfg.effective_deadline_ms(&reg, 50), 100);
        // 10 ev/s measured, checkpoint every 50 events: 5 s expected,
        // ×4 grace = 20 s.
        reg.gauge(Key::stage("churn", "replay_rate"), 10.0);
        assert_eq!(cfg.effective_deadline_ms(&reg, 50), 20_000);
        // A fast measured rate never lowers the deadline below the floor.
        reg.gauge(Key::stage("churn", "replay_rate"), 1e9);
        assert_eq!(cfg.effective_deadline_ms(&reg, 50), 100);
    }
}
