//! The §5 countermeasures, implemented and evaluated.
//!
//! * **Dynamics-aware relay selection** — relays publish the ASes used
//!   to reach them over the last month; clients prefer guards whose
//!   client↔guard segment exposed the fewest distinct ASes.
//! * **Shorter AS-PATH preference** — prefer guards with short AS paths
//!   from the client, shrinking the attack surface for stealthy
//!   same-prefix hijacks.
//! * **AS-aware circuit filtering** — "Tor clients should select relays
//!   such that the same AS does not appear in both the first and the
//!   last segments, after taking path dynamics into account."
//! * **Monitoring** — the control-plane monitor of
//!   `quicksand_attack::detect`, evaluated for recall on injected
//!   hijacks/interceptions and alarm rate on natural churn (the paper
//!   accepts false positives: availability is traded for anonymity).

use crate::scenario::{MonthResult, Scenario};
use crate::temporal;
use quicksand_attack::detect::{DetectionScore, PrefixMonitor};
use quicksand_bgp::metrics::PathTimeline;
use quicksand_bgp::{Route, SessionId, UpdateLog, UpdateMessage, UpdateRecord};
use quicksand_net::{AsPath, Asn, Ipv4Prefix, SimDuration, SimTime};
use quicksand_obs as obs;
use quicksand_topology::RoutingTree;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Guard-selection strategies under evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardStrategy {
    /// Tor's default: bandwidth-weighted.
    Vanilla,
    /// Prefer guards with the shortest current AS path from the client.
    ShortestPath,
    /// Prefer guards whose client↔guard segment exposed the fewest
    /// distinct ASes over the last month (the paper's consensus-
    /// published path-dynamics data).
    DynamicsAware,
}

impl GuardStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [GuardStrategy; 3] = [
        GuardStrategy::Vanilla,
        GuardStrategy::ShortestPath,
        GuardStrategy::DynamicsAware,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            GuardStrategy::Vanilla => "vanilla",
            GuardStrategy::ShortestPath => "shortest-path",
            GuardStrategy::DynamicsAware => "dynamics-aware",
        }
    }
}

/// Result of the guard-strategy evaluation.
#[derive(Clone, Debug)]
pub struct GuardStrategyEval {
    /// Rows: `(strategy, mean distinct ASes x across clients, mean
    /// entry-compromise probability at each f in `fs`)`.
    pub rows: Vec<(GuardStrategy, f64, Vec<f64>)>,
    /// The adversarial fractions evaluated.
    pub fs: Vec<f64>,
    /// Clients sampled.
    pub n_clients: usize,
    /// Guards per client.
    pub guards_per_client: usize,
}

/// Evaluate guard strategies over the scenario's churn history.
///
/// For each sampled client and each strategy, pick `l` guards, look up
/// the month's (client → guard-AS) path timelines, count the distinct
/// ASes exposed ≥ 5 minutes (the union over the guard set), and apply
/// the §3.1 model `1 − (1−f)^x`.
pub fn evaluate_guard_strategies(
    scenario: &Scenario,
    n_clients: usize,
    guards_per_client: usize,
    fs: &[f64],
    seed: u64,
) -> GuardStrategyEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = &scenario.topo.graph;

    // Candidate guards: top guards by bandwidth (candidate pool kept
    // modest so the history replay stays cheap).
    let mut guards: Vec<&quicksand_tor::Relay> = scenario.consensus.guards().collect();
    guards.sort_by_key(|r| std::cmp::Reverse(r.bandwidth_kbs));
    guards.truncate(24);
    let guard_ases: Vec<Asn> = guards
        .iter()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    // Sampled clients (stub ASes).
    let mut clients: Vec<Asn> = scenario.topo.stubs.clone();
    clients.shuffle(&mut rng);
    clients.truncate(n_clients);

    // One churn replay provides every (client, guard-AS) timeline.
    let history = scenario.path_history(&clients, &guard_ases);
    let horizon = scenario.horizon_end();
    let min_dur = SimDuration::from_mins(5);
    let exposure = |client: Asn, guard_as: Asn| -> BTreeSet<Asn> {
        history
            .get(&(client, guard_as))
            .map(|tl| tl.distinct_ases(horizon, min_dur))
            .unwrap_or_default()
    };

    // Current path lengths for the shortest-path strategy.
    let mut path_len: BTreeMap<(Asn, Asn), usize> = BTreeMap::new();
    for &ga in &guard_ases {
        let tree = RoutingTree::compute(g, ga).expect("guard AS routed");
        for &c in &clients {
            if let Some(d) = tree.distance(g, c) {
                path_len.insert((c, ga), d as usize);
            }
        }
    }

    let mut rows = Vec::new();
    for strategy in GuardStrategy::ALL {
        let mut x_sum = 0.0;
        let mut p_sums = vec![0.0; fs.len()];
        for &client in &clients {
            // Rank candidate guards per strategy, take the top l from
            // distinct ASes (one guard per AS keeps the union metric
            // meaningful).
            let mut ranked: Vec<&quicksand_tor::Relay> = guards.clone();
            match strategy {
                GuardStrategy::Vanilla => {
                    // Bandwidth-weighted sample without replacement.
                    let mut pool = ranked.clone();
                    let mut chosen = Vec::new();
                    while chosen.len() < guards_per_client && !pool.is_empty() {
                        let total: u64 =
                            pool.iter().map(|r| r.bandwidth_kbs.max(1)).sum();
                        let mut x = rng.gen_range(0..total);
                        let mut idx = 0;
                        for (i, r) in pool.iter().enumerate() {
                            let w = r.bandwidth_kbs.max(1);
                            if x < w {
                                idx = i;
                                break;
                            }
                            x -= w;
                        }
                        chosen.push(pool.remove(idx));
                    }
                    ranked = chosen;
                }
                GuardStrategy::ShortestPath => {
                    ranked.sort_by_key(|r| {
                        (
                            path_len.get(&(client, r.host_as)).copied().unwrap_or(99),
                            std::cmp::Reverse(r.bandwidth_kbs),
                        )
                    });
                }
                GuardStrategy::DynamicsAware => {
                    ranked.sort_by_key(|r| {
                        (
                            exposure(client, r.host_as).len(),
                            std::cmp::Reverse(r.bandwidth_kbs),
                        )
                    });
                }
            }
            let mut chosen_ases: Vec<Asn> = Vec::new();
            for r in ranked {
                if chosen_ases.len() >= guards_per_client {
                    break;
                }
                if !chosen_ases.contains(&r.host_as) {
                    chosen_ases.push(r.host_as);
                }
            }
            let union: BTreeSet<Asn> = chosen_ases
                .iter()
                .flat_map(|&ga| exposure(client, ga))
                .collect();
            let x = union.len();
            x_sum += x as f64;
            for (i, &f) in fs.iter().enumerate() {
                p_sums[i] += temporal::compromise_probability(f, x);
            }
        }
        let n = clients.len().max(1) as f64;
        rows.push((
            strategy,
            x_sum / n,
            p_sums.into_iter().map(|p| p / n).collect(),
        ));
    }
    GuardStrategyEval {
        rows,
        fs: fs.to_vec(),
        n_clients: clients.len(),
        guards_per_client,
    }
}

/// Result of the AS-aware circuit-filter evaluation.
#[derive(Clone, Debug)]
pub struct CircuitFilterEval {
    /// Fraction of vanilla circuits with an AS on both segments.
    pub vanilla_overlap: f64,
    /// Same, for circuits passing the *static* AS-disjointness filter
    /// (snapshot paths only), re-evaluated against the dynamic exposure
    /// sets — residual risk from path changes.
    pub static_filter_residual: f64,
    /// Same, for the dynamics-aware filter (last month's AS sets).
    pub dynamic_filter_residual: f64,
    /// Circuits sampled.
    pub n_circuits: usize,
}

/// Evaluate the §5 circuit filter: "the same AS does not appear in both
/// the first and the last segments, after taking path dynamics into
/// account".
pub fn evaluate_circuit_filter(
    scenario: &Scenario,
    n_circuits: usize,
    seed: u64,
) -> CircuitFilterEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let guards: Vec<&quicksand_tor::Relay> = {
        let mut v: Vec<_> = scenario.consensus.guards().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.bandwidth_kbs));
        v.truncate(12);
        v
    };
    let exits: Vec<&quicksand_tor::Relay> = {
        let mut v: Vec<_> = scenario.consensus.exits().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.bandwidth_kbs));
        v.truncate(12);
        v
    };
    let clients: Vec<Asn> = {
        let mut v = scenario.topo.stubs.clone();
        v.shuffle(&mut rng);
        v.truncate(8);
        v
    };
    let dests: Vec<Asn> = {
        let mut v = scenario.topo.stubs.clone();
        v.shuffle(&mut rng);
        v.truncate(8);
        v
    };

    // Dynamic exposure sets from the churn replay: client→guardAS and
    // exitAS→dest (vantage = exit AS, origin = dest).
    let guard_ases: Vec<Asn> = guards
        .iter()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let exit_ases: Vec<Asn> = exits
        .iter()
        .map(|r| r.host_as)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let entry_hist = scenario.path_history(&clients, &guard_ases);
    let exit_hist = scenario.path_history(&exit_ases, &dests);
    let horizon = scenario.horizon_end();
    let min_dur = SimDuration::from_mins(5);
    let dynamic_set = |hist: &BTreeMap<(Asn, Asn), PathTimeline>,
                       v: Asn,
                       o: Asn|
     -> BTreeSet<Asn> {
        hist.get(&(v, o))
            .map(|tl| tl.distinct_ases(horizon, min_dur))
            .unwrap_or_default()
    };
    let static_set = |hist: &BTreeMap<(Asn, Asn), PathTimeline>,
                      v: Asn,
                      o: Asn|
     -> BTreeSet<Asn> {
        hist.get(&(v, o))
            .and_then(|tl| tl.points.first().map(|(_, s)| s.clone()))
            .unwrap_or_default()
    };

    let mut vanilla_overlap = 0usize;
    let mut static_pass = 0usize;
    let mut static_residual = 0usize;
    let mut dynamic_pass = 0usize;
    let mut dynamic_residual = 0usize;
    for _ in 0..n_circuits {
        let client = clients[rng.gen_range(0..clients.len())];
        let dest = dests[rng.gen_range(0..dests.len())];
        let guard = guards[rng.gen_range(0..guards.len())];
        let exit = exits[rng.gen_range(0..exits.len())];
        let entry_dyn = dynamic_set(&entry_hist, client, guard.host_as);
        let exit_dyn = dynamic_set(&exit_hist, exit.host_as, dest);
        let overlap_dyn = !entry_dyn.is_disjoint(&exit_dyn);
        if overlap_dyn {
            vanilla_overlap += 1;
        }
        // Static filter: disjoint on snapshot paths.
        let entry_static = static_set(&entry_hist, client, guard.host_as);
        let exit_static = static_set(&exit_hist, exit.host_as, dest);
        if entry_static.is_disjoint(&exit_static) {
            static_pass += 1;
            if overlap_dyn {
                static_residual += 1; // dynamics broke the guarantee
            }
        }
        // Dynamics-aware filter: disjoint on month-long AS sets.
        if !overlap_dyn {
            dynamic_pass += 1;
            // By construction residual is zero against the same-month
            // exposure; count kept for symmetry.
        } else {
            dynamic_residual += 0;
        }
    }
    CircuitFilterEval {
        vanilla_overlap: vanilla_overlap as f64 / n_circuits.max(1) as f64,
        static_filter_residual: static_residual as f64 / static_pass.max(1) as f64,
        dynamic_filter_residual: dynamic_residual as f64 / dynamic_pass.max(1) as f64,
        n_circuits,
    }
}

/// Result of the monitoring evaluation.
#[derive(Clone, Debug)]
pub struct MonitoringEval {
    /// Alarms per (session, Tor prefix) pair on purely natural churn.
    pub natural_alarm_rate: f64,
    /// Detection score for injected exact-prefix hijacks.
    pub hijack_score: DetectionScore,
    /// Detection score for injected interception splices (new upstream
    /// adjacent to the true origin).
    pub splice_score: DetectionScore,
}

/// Evaluate the §5 monitor: train on the first half of the month, scan
/// the second half for natural false alarms, then inject attacks and
/// measure recall.
pub fn evaluate_monitoring(
    scenario: &Scenario,
    month: &MonthResult,
    n_attacks: usize,
    seed: u64,
) -> MonitoringEval {
    let mut rng = StdRng::seed_from_u64(seed);
    let registered: Vec<(Ipv4Prefix, Asn)> = scenario
        .tor_prefixes
        .origin_by_prefix
        .iter()
        .map(|(p, a)| (*p, *a))
        .collect();
    let mut monitor = PrefixMonitor::new(registered.clone());

    // Split the cleaned log at mid-horizon.
    let mid = SimTime(month.horizon_end.0 / 2);
    let first: UpdateLog = UpdateLog {
        records: month
            .cleaned
            .records
            .iter()
            .filter(|r| r.at <= mid)
            .cloned()
            .collect(),
    };
    let second: UpdateLog = UpdateLog {
        records: month
            .cleaned
            .records
            .iter()
            .filter(|r| r.at > mid)
            .cloned()
            .collect(),
    };
    monitor.train(&first);

    // Natural alarm rate on the clean second half.
    let natural = monitor.scan(&second);
    let pairs = second.by_session_prefix().len().max(1);
    let natural_alarm_rate = natural.len() as f64 / pairs as f64;

    // Inject attacks: half exact-prefix origin hijacks, half splices.
    let attacker = Asn(0xEEEE);
    let mut hijack_log = second.clone();
    let mut splice_log = second.clone();
    let mut hijacked: BTreeSet<Ipv4Prefix> = BTreeSet::new();
    let mut spliced: BTreeSet<Ipv4Prefix> = BTreeSet::new();
    for _ in 0..n_attacks {
        let (prefix, origin) = registered[rng.gen_range(0..registered.len())];
        if rng.gen_bool(0.5) {
            hijacked.insert(prefix);
            hijack_log.records.push(UpdateRecord {
                at: month.horizon_end,
                session: SessionId(0),
                msg: UpdateMessage::Announce(Route {
                    prefix,
                    as_path: AsPath::from_asns([Asn(1), attacker]),
                    communities: Default::default(),
                }),
            });
        } else {
            spliced.insert(prefix);
            splice_log.records.push(UpdateRecord {
                at: month.horizon_end,
                session: SessionId(0),
                msg: UpdateMessage::Announce(Route {
                    prefix,
                    as_path: AsPath::from_asns([Asn(1), attacker, origin]),
                    communities: Default::default(),
                }),
            });
        }
    }
    let hijack_alarms = monitor.scan(&hijack_log);
    let splice_alarms = monitor.scan(&splice_log);
    // Score only against the injected sets; natural alarms count as
    // false positives, which the paper tolerates.
    let hijack_score = DetectionScore::score(&hijack_alarms, &hijacked);
    let splice_score = DetectionScore::score(&splice_alarms, &spliced);

    MonitoringEval {
        natural_alarm_rate,
        hijack_score,
        splice_score,
    }
}

/// Result of the real-time monitoring evaluation (§7 future work: "a
/// real time monitoring framework for secure path selection in Tor").
#[derive(Clone, Debug)]
pub struct RealtimeMonitoringEval {
    /// Mean detection latency for injected interception splices.
    pub mean_detection_latency: SimDuration,
    /// Fraction of injected attacks detected at all.
    pub detection_rate: f64,
    /// Fraction of *post-advisory* circuit builds that avoided an
    /// attacked guard prefix thanks to the advisory board.
    pub protected_fraction: f64,
    /// Same selection without advisories (baseline exposure).
    pub unprotected_fraction: f64,
    /// Number of injected attacks.
    pub attacks: usize,
}

/// Replay the month's cleaned update stream through the online
/// [`quicksand_attack::monitord::StreamingMonitor`], injecting interception splices against sampled
/// guard prefixes at mid-horizon, and measure (a) detection latency and
/// (b) how much client protection the advisory feedback buys: clients
/// building circuits after the attack avoid guards whose prefixes are
/// flagged.
pub fn evaluate_realtime_monitoring(
    scenario: &Scenario,
    month: &MonthResult,
    n_attacks: usize,
    seed: u64,
) -> RealtimeMonitoringEval {
    use quicksand_attack::monitord::{MonitorConfig, StreamingMonitor};
    let mut rng = StdRng::seed_from_u64(seed);

    // Attacked guard prefixes: those hosting the highest-bandwidth
    // guards (the attractive targets §3.2 identifies).
    let mut guards: Vec<&quicksand_tor::Relay> = scenario.consensus.guards().collect();
    guards.sort_by_key(|r| std::cmp::Reverse(r.bandwidth_kbs));
    let mut attacked: Vec<(Ipv4Prefix, Asn)> = Vec::new();
    for g in &guards {
        if attacked.len() >= n_attacks {
            break;
        }
        if let Some((p, o)) = scenario.plan.table.longest_match(g.addr) {
            if !attacked.iter().any(|(q, _)| *q == p) {
                attacked.push((p, o));
            }
        }
    }

    let attack_at = SimTime(month.horizon_end.0 * 7 / 10);
    let attacker = Asn(0xEEEE);

    // Build the attacked stream: the clean log plus splice
    // announcements arriving shortly after the attack starts (BGP
    // propagation delay drawn per attack).
    let mut stream: Vec<UpdateRecord> = month.cleaned.records.clone();
    for (p, o) in &attacked {
        let delay = SimDuration::from_secs(rng.gen_range(30..300));
        stream.push(UpdateRecord {
            at: attack_at + delay,
            session: SessionId(0),
            msg: UpdateMessage::Announce(Route {
                prefix: *p,
                as_path: AsPath::from_asns([Asn(1), attacker, *o]),
                communities: Default::default(),
            }),
        });
    }
    stream.sort_by_key(|r| r.at);

    let mut monitor = StreamingMonitor::new(
        scenario
            .tor_prefixes
            .origin_by_prefix
            .iter()
            .map(|(p, a)| (*p, *a)),
        MonitorConfig::default(),
    );
    obs::timed("monitor", || {
        for r in &stream {
            monitor.ingest(r);
        }
    });
    // Liveness probe at end-of-stream; check_feed times itself, so it
    // stays outside the ingest span to keep monitor wall time additive.
    if let Some(last) = stream.last() {
        let _ = monitor.check_feed(last.at);
    }

    let mut latency_sum = SimDuration::ZERO;
    let mut detected = 0usize;
    for (p, _) in &attacked {
        if let Some(lat) = monitor.detection_latency(p, attack_at) {
            latency_sum = latency_sum + lat;
            detected += 1;
        }
    }

    // Client protection: build circuits after the advisory is live and
    // check guard avoidance.
    let attacked_prefixes: BTreeSet<Ipv4Prefix> =
        attacked.iter().map(|(p, _)| *p).collect();
    let selection_at = attack_at + SimDuration::from_mins(30);
    let mut builder = quicksand_tor::CircuitBuilder::new(
        &scenario.consensus,
        &quicksand_tor::SelectionConfig {
            guards_per_client: 3,
            seed: seed ^ 0xC1AC,
        },
    );
    let n_trials = 200;
    let mut unprotected_hits = 0usize;
    let mut protected_hits = 0usize;
    for _ in 0..n_trials {
        let Some(gs) = builder.pick_guards(3) else { break };
        // Unprotected: plain bandwidth-weighted choice.
        let exposed = gs.guards.iter().any(|id| {
            scenario
                .plan
                .table
                .longest_match(scenario.consensus.relay(*id).addr)
                .is_some_and(|(p, _)| attacked_prefixes.contains(&p))
        });
        if exposed {
            unprotected_hits += 1;
        }
        // Protected: drop flagged guards and re-draw replacements.
        let kept: Vec<_> = gs
            .guards
            .iter()
            .filter(|id| {
                scenario
                    .plan
                    .table
                    .longest_match(scenario.consensus.relay(**id).addr)
                    .map_or(true, |(p, _)| !monitor.is_flagged(&p, selection_at))
            })
            .collect();
        // A flagged guard caught by the advisory counts as protected
        // unless the monitor missed the attack entirely.
        let still_exposed = kept.iter().any(|id| {
            scenario
                .plan
                .table
                .longest_match(scenario.consensus.relay(**id).addr)
                .is_some_and(|(p, _)| attacked_prefixes.contains(&p))
        });
        if still_exposed {
            protected_hits += 1;
        }
    }

    RealtimeMonitoringEval {
        mean_detection_latency: SimDuration(
            latency_sum.0 / detected.max(1) as u64,
        ),
        detection_rate: detected as f64 / attacked.len().max(1) as f64,
        protected_fraction: 1.0 - protected_hits as f64 / n_trials as f64,
        unprotected_fraction: 1.0 - unprotected_hits as f64 / n_trials as f64,
        attacks: attacked.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> &'static (Scenario, MonthResult) {
        crate::testworld::get()
    }

    #[test]
    fn dynamics_aware_selection_reduces_exposure() {
        let (s, _) = world();
        let eval = evaluate_guard_strategies(s, 6, 3, &[0.02, 0.05], 1);
        assert_eq!(eval.rows.len(), 3);
        let get = |st: GuardStrategy| {
            eval.rows
                .iter()
                .find(|(s, _, _)| *s == st)
                .expect("row present")
        };
        let vanilla = get(GuardStrategy::Vanilla);
        let dynamics = get(GuardStrategy::DynamicsAware);
        // Dynamics-aware must not do worse on mean exposure.
        assert!(
            dynamics.1 <= vanilla.1 + 1e-9,
            "dynamics {} vs vanilla {}",
            dynamics.1,
            vanilla.1
        );
        // Probabilities are monotone in f.
        for (_, _, ps) in &eval.rows {
            assert!(ps[0] <= ps[1] + 1e-12);
        }
    }

    #[test]
    fn circuit_filter_reduces_overlap() {
        let (s, _) = world();
        let eval = evaluate_circuit_filter(s, 120, 2);
        assert!(eval.vanilla_overlap >= 0.0 && eval.vanilla_overlap <= 1.0);
        // The dynamics-aware filter has zero residual risk against the
        // same month by construction; the static filter may leak.
        assert_eq!(eval.dynamic_filter_residual, 0.0);
        assert!(eval.static_filter_residual <= 1.0);
    }

    #[test]
    fn realtime_monitoring_detects_and_protects() {
        let (s, m) = world();
        let eval = evaluate_realtime_monitoring(s, m, 8, 5);
        assert!(eval.attacks > 0);
        // Splices against trained prefixes are caught quickly.
        assert!(eval.detection_rate > 0.5, "rate {}", eval.detection_rate);
        assert!(eval.mean_detection_latency <= SimDuration::from_mins(10));
        // Advisory-aware selection is at least as safe as vanilla.
        assert!(eval.protected_fraction >= eval.unprotected_fraction - 1e-9);
    }

    #[test]
    fn monitoring_catches_injected_attacks() {
        let (s, m) = world();
        let eval = evaluate_monitoring(s, m, 20, 3);
        // Origin hijacks are always caught (MOAS signature).
        assert_eq!(eval.hijack_score.recall(), 1.0);
        // Splices are caught when training knew the prefix's upstreams;
        // recall should be high but may miss untrained prefixes.
        assert!(eval.splice_score.recall() >= 0.5);
        // The aggressive posture tolerates natural alarms.
        assert!(eval.natural_alarm_rate >= 0.0);
    }
}
