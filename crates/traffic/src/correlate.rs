//! Traffic correlation: the deanonymization decision.
//!
//! The adversary holds two captures — e.g. bytes *sent* server→exit and
//! bytes *acked* client→guard — bins both into fixed-width increments
//! over a common window, and computes the Pearson correlation of the
//! increment vectors, maximized over a small time lag (store-and-forward
//! shifts the curves). "A new correlation analysis is required here
//! since TCP acknowledgements are cumulative, and there is not a
//! one-to-one correspondence between packets seen at both ends" — the
//! cumulative→increment binning is exactly that analysis.
//!
//! [`match_circuit`] runs the decision end-to-end: given the capture at
//! one end and a set of candidate captures at the other (the true
//! circuit hidden among decoys), pick the candidate with the highest
//! lagged correlation.

use crate::capture::Capture;
use quicksand_net::{SimDuration, SimTime};
use quicksand_obs as obs;

/// Parameters of the correlation analysis.
#[derive(Clone, Debug)]
pub struct CorrelationConfig {
    /// Bin width for increment resampling.
    pub bin: SimDuration,
    /// Maximum lag to search, in bins, each direction.
    pub max_lag_bins: usize,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            bin: SimDuration::from_millis(500),
            max_lag_bins: 4,
        }
    }
}

/// Pearson correlation coefficient of two equal-length vectors.
/// Returns 0.0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// The result of a lagged correlation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrelationResult {
    /// Best Pearson coefficient over the lag search.
    pub coefficient: f64,
    /// The lag (in bins) at which it was achieved; positive means `b`
    /// trails `a`.
    pub lag_bins: isize,
}

/// Correlate two captures over `[start, end)` with lag search.
pub fn correlate(
    a: &Capture,
    b: &Capture,
    start: SimTime,
    end: SimTime,
    config: &CorrelationConfig,
) -> CorrelationResult {
    obs::timed("correlate", || {
        let result = correlate_inner(a, b, start, end, config);
        obs::incr("correlate", "pairs", 1);
        obs::observe_bounded(
            "correlate",
            "coefficient",
            result.coefficient,
            &obs::SCORE_BOUNDS,
        );
        result
    })
}

fn correlate_inner(
    a: &Capture,
    b: &Capture,
    start: SimTime,
    end: SimTime,
    config: &CorrelationConfig,
) -> CorrelationResult {
    let xa = a.series.bin_increments(start, end, config.bin);
    let xb = b.series.bin_increments(start, end, config.bin);
    let mut best = CorrelationResult {
        coefficient: f64::NEG_INFINITY,
        lag_bins: 0,
    };
    let max_lag = config.max_lag_bins as isize;
    for lag in -max_lag..=max_lag {
        // Shift b by `lag` bins relative to a.
        let n = xa.len() as isize;
        let overlap = n - lag.abs();
        if overlap < 2 {
            continue;
        }
        let (a_off, b_off) = if lag >= 0 { (lag, 0) } else { (0, -lag) };
        let sa = &xa[a_off as usize..(a_off + overlap) as usize];
        let sb = &xb[b_off as usize..(b_off + overlap) as usize];
        let c = pearson(sa, sb);
        if c > best.coefficient {
            best = CorrelationResult {
                coefficient: c,
                lag_bins: lag,
            };
        }
    }
    if best.coefficient == f64::NEG_INFINITY {
        best.coefficient = 0.0;
    }
    best
}

/// The outcome of matching a target against candidates.
#[derive(Clone, Debug)]
pub struct MatchResult {
    /// Index of the best-matching candidate.
    pub best_index: usize,
    /// Its correlation.
    pub best: CorrelationResult,
    /// Correlation of every candidate (same order as input).
    pub all: Vec<CorrelationResult>,
}

/// Match the `target` capture against `candidates`: the adversary's
/// decision of which observed flow at the far end corresponds to the
/// near-end flow. Returns `None` when `candidates` is empty.
pub fn match_circuit(
    target: &Capture,
    candidates: &[&Capture],
    start: SimTime,
    end: SimTime,
    config: &CorrelationConfig,
) -> Option<MatchResult> {
    if candidates.is_empty() {
        return None;
    }
    obs::incr("correlate", "matches", 1);
    let all: Vec<CorrelationResult> = candidates
        .iter()
        .map(|c| correlate(target, c, start, end, config))
        .collect();
    let best_index = all
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| {
            x.coefficient
                .partial_cmp(&y.coefficient)
                .expect("no NaN coefficients")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    Some(MatchResult {
        best_index,
        best: all[best_index],
        all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::ByteSeries;

    fn ramp_capture(label: &str, step_bytes: u64, start_ms: u64, n: usize) -> Capture {
        // A linear ramp: `step_bytes` per 100 ms starting at start_ms.
        let mut points = Vec::new();
        let mut cum = 0;
        for i in 0..n {
            cum += step_bytes;
            points.push((SimTime::from_millis(start_ms + 100 * i as u64), cum));
        }
        Capture {
            label: label.into(),
            series: ByteSeries { points },
        }
    }

    fn bursty_capture(label: &str, bursts: &[(u64, u64)]) -> Capture {
        let mut points = Vec::new();
        let mut cum = 0;
        for &(at_ms, bytes) in bursts {
            cum += bytes;
            points.push((SimTime::from_millis(at_ms), cum));
        }
        Capture {
            label: label.into(),
            series: ByteSeries { points },
        }
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn identical_flows_correlate_perfectly() {
        let a = bursty_capture("a", &[(100, 5000), (600, 100), (1200, 8000), (1800, 300)]);
        let cfg = CorrelationConfig {
            bin: SimDuration::from_millis(200),
            max_lag_bins: 3,
        };
        let r = correlate(&a, &a, SimTime::ZERO, SimTime::from_millis(2000), &cfg);
        assert!((r.coefficient - 1.0).abs() < 1e-9);
        assert_eq!(r.lag_bins, 0);
    }

    #[test]
    fn lag_search_recovers_shift() {
        let a = bursty_capture("a", &[(100, 5000), (600, 100), (1200, 8000), (1800, 300)]);
        // Same flow delayed by 400 ms = 2 bins.
        let b = bursty_capture("b", &[(500, 5000), (1000, 100), (1600, 8000), (2200, 300)]);
        let cfg = CorrelationConfig {
            bin: SimDuration::from_millis(200),
            max_lag_bins: 4,
        };
        let r = correlate(&a, &b, SimTime::ZERO, SimTime::from_millis(2600), &cfg);
        assert!(r.coefficient > 0.99, "coef {}", r.coefficient);
        assert_eq!(r.lag_bins, -2);
    }

    #[test]
    fn different_flows_correlate_poorly() {
        let a = bursty_capture("a", &[(100, 9000), (1500, 200), (1900, 7000)]);
        let b = ramp_capture("b", 500, 0, 20);
        let cfg = CorrelationConfig::default();
        let r = correlate(&a, &b, SimTime::ZERO, SimTime::from_millis(2000), &cfg);
        assert!(r.coefficient < 0.9);
    }

    #[test]
    fn matching_picks_the_true_flow() {
        let truth = bursty_capture(
            "true",
            &[(100, 5000), (700, 100), (1200, 8000), (1900, 2500)],
        );
        // The far-end view: same bursts, small lag.
        let observed = bursty_capture(
            "obs",
            &[(250, 5000), (850, 100), (1350, 8000), (2050, 2500)],
        );
        let decoy1 = ramp_capture("d1", 800, 0, 25);
        let decoy2 =
            bursty_capture("d2", &[(400, 12000), (1600, 400), (2300, 900)]);
        let cfg = CorrelationConfig {
            bin: SimDuration::from_millis(250),
            max_lag_bins: 3,
        };
        let result = match_circuit(
            &observed,
            &[&decoy1, &truth, &decoy2],
            SimTime::ZERO,
            SimTime::from_millis(2500),
            &cfg,
        )
        .unwrap();
        assert_eq!(result.best_index, 1);
        assert!(result.best.coefficient > 0.95);
        assert_eq!(result.all.len(), 3);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let a = ramp_capture("a", 100, 0, 5);
        assert!(match_circuit(
            &a,
            &[],
            SimTime::ZERO,
            SimTime::from_secs(1),
            &CorrelationConfig::default()
        )
        .is_none());
    }
}
