//! Vantage-point captures: what an AS on the path records.
//!
//! An AS-level eavesdropper sees TCP/IP *headers* even under SSL/TLS.
//! From a stream of [`PacketRecord`]s it derives one of two cumulative
//! byte curves:
//!
//! * **data direction** — cumulative payload bytes seen (from the
//!   length field), or
//! * **ACK direction** — cumulative bytes *acknowledged* (from the TCP
//!   acknowledgment number — the paper's observation that "our attack
//!   inspects TCP headers to infer the number of bytes being
//!   acknowledged using the TCP sequence number field").
//!
//! Both are [`ByteSeries`] — monotone step functions of time — and are
//! directly comparable, which is exactly why one direction at each end
//! suffices (§3.3).

use crate::tcp::PacketRecord;
use quicksand_net::SimTime;
use serde::{Deserialize, Serialize};

/// Which direction of a segment a vantage point observes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// The data-carrying direction (toward the downloader).
    Data,
    /// The acknowledgment direction (from the downloader).
    Ack,
}

/// A monotone cumulative-bytes step function.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteSeries {
    /// `(time, cumulative bytes)` points, time-ascending, bytes
    /// non-decreasing.
    pub points: Vec<(SimTime, u64)>,
}

impl ByteSeries {
    /// Total bytes at the end of the series.
    pub fn total(&self) -> u64 {
        self.points.last().map_or(0, |&(_, b)| b)
    }

    /// The cumulative value at time `t` (0 before the first point).
    pub fn at(&self, t: SimTime) -> u64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => 0,
            i => self.points[i - 1].1,
        }
    }

    /// The cumulative value strictly before time `t`.
    fn at_excl(&self, t: SimTime) -> u64 {
        match self.points.partition_point(|&(pt, _)| pt < t) {
            0 => 0,
            i => self.points[i - 1].1,
        }
    }

    /// Resample into fixed-width bins over `[start, end)`: element `i`
    /// is the byte *increment* within the half-open bin
    /// `[start + i·bin, start + (i+1)·bin)`. The paper's correlation
    /// operates on such binned increments.
    pub fn bin_increments(&self, start: SimTime, end: SimTime, bin: quicksand_net::SimDuration) -> Vec<f64> {
        assert!(bin.0 > 0, "zero bin width");
        let mut out = Vec::new();
        let mut t = start;
        let mut prev = self.at_excl(start);
        while t < end {
            let next = t + bin;
            let cur = self.at_excl(next.min(end));
            out.push((cur - prev) as f64);
            prev = cur;
            t = next;
        }
        out
    }

    /// End time of the series (last point), if any.
    pub fn end_time(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }
}

/// A capture: one vantage point's view of one segment direction.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capture {
    /// A label for diagnostics (e.g. "guard→client").
    pub label: String,
    /// The derived cumulative byte curve.
    pub series: ByteSeries,
}

impl Capture {
    /// Derive the cumulative *data* curve from data-direction packets.
    pub fn from_data(label: impl Into<String>, packets: &[PacketRecord]) -> Capture {
        let mut cum = 0u64;
        let mut points = Vec::with_capacity(packets.len());
        for p in packets {
            cum += u64::from(p.len);
            points.push((p.at, cum));
        }
        Capture {
            label: label.into(),
            series: ByteSeries { points },
        }
    }

    /// Derive the cumulative *acknowledged-bytes* curve from
    /// ACK-direction packets: the running maximum of the TCP ack field.
    /// Cumulative ACKs are not one-to-one with data packets — this is
    /// the new correlation input §3.3 introduces.
    pub fn from_acks(label: impl Into<String>, packets: &[PacketRecord]) -> Capture {
        let mut hi = 0u64;
        let mut points = Vec::with_capacity(packets.len());
        for p in packets {
            hi = hi.max(p.ack);
            points.push((p.at, hi));
        }
        Capture {
            label: label.into(),
            series: ByteSeries { points },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_net::SimDuration;

    fn rec(at_ms: u64, len: u32, ack: u64) -> PacketRecord {
        PacketRecord {
            at: SimTime::from_millis(at_ms),
            seq: 0,
            len,
            ack,
        }
    }

    #[test]
    fn data_capture_accumulates_lengths() {
        let c = Capture::from_data(
            "x",
            &[rec(0, 100, 0), rec(10, 200, 0), rec(20, 50, 0)],
        );
        assert_eq!(c.series.total(), 350);
        assert_eq!(c.series.at(SimTime::from_millis(10)), 300);
        assert_eq!(c.series.at(SimTime::from_millis(9)), 100);
        assert_eq!(c.series.at(SimTime::ZERO), 100);
    }

    #[test]
    fn ack_capture_takes_running_max() {
        // Reordered ACKs must not decrease the curve.
        let c = Capture::from_acks(
            "x",
            &[rec(0, 0, 1000), rec(10, 0, 500), rec(20, 0, 3000)],
        );
        assert_eq!(
            c.series.points.iter().map(|&(_, b)| b).collect::<Vec<_>>(),
            vec![1000, 1000, 3000]
        );
    }

    #[test]
    fn binned_increments_sum_to_total() {
        let c = Capture::from_data(
            "x",
            &[rec(100, 10, 0), rec(900, 20, 0), rec(1500, 30, 0)],
        );
        let bins = c.series.bin_increments(
            SimTime::ZERO,
            SimTime::from_millis(2000),
            SimDuration::from_millis(500),
        );
        assert_eq!(bins.len(), 4);
        assert_eq!(bins.iter().sum::<f64>(), 60.0);
        assert_eq!(bins, vec![10.0, 20.0, 0.0, 30.0]);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = ByteSeries::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.at(SimTime::from_secs(5)), 0);
        assert_eq!(s.end_time(), None);
        let bins = s.bin_increments(
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_millis(250),
        );
        assert_eq!(bins, vec![0.0; 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use quicksand_net::SimDuration;

    proptest! {
        /// Binned increments always sum to the cumulative delta over the
        /// window, for any packet arrangement.
        #[test]
        fn bins_partition_the_window(
            lens in proptest::collection::vec(1u32..5000, 1..50),
            gaps in proptest::collection::vec(1u64..500, 1..50),
        ) {
            let mut t = 0u64;
            let mut packets = Vec::new();
            for (len, gap) in lens.iter().zip(gaps.iter().cycle()) {
                t += gap;
                packets.push(PacketRecord {
                    at: SimTime::from_millis(t),
                    seq: 0,
                    len: *len,
                    ack: 0,
                });
            }
            let c = Capture::from_data("p", &packets);
            let end = SimTime::from_millis(t + 1);
            let bins = c.series.bin_increments(
                SimTime::ZERO,
                end,
                SimDuration::from_millis(97),
            );
            let sum: f64 = bins.iter().sum();
            prop_assert_eq!(sum as u64, c.series.total());
        }
    }
}
