//! An event-driven TCP bulk-transfer simulator.
//!
//! Models one unidirectional transfer (sender → receiver) with the
//! mechanisms that shape the byte/ACK time series the paper correlates:
//!
//! * slow start and AIMD congestion avoidance (cwnd in MSS units),
//! * a paced bottleneck rate at the sender's egress,
//! * cumulative acknowledgments (one ACK per received segment),
//! * optional random segment loss with fast retransmit (3 dup-ACKs)
//!   and a coarse retransmission timeout.
//!
//! Fidelity target: the *shape* of cumulative bytes over time and the
//! equality of bytes-sent vs bytes-acked curves, not per-RFC edge-case
//! conformance (no SACK, no Nagle, no window scaling — the same honesty
//! the smoltcp feature list practices).

use quicksand_net::{SimDuration, SimTime};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One packet as a vantage point would record it from TCP/IP headers:
/// timestamps, direction, sequence/ack numbers, payload length. No
/// payload bytes — SSL/TLS hides those, but not the header fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// When the packet passes the vantage point.
    pub at: SimTime,
    /// Sequence number of the first payload byte (data packets).
    pub seq: u64,
    /// Payload length in bytes (0 for pure ACKs).
    pub len: u32,
    /// Cumulative acknowledgment number carried by the packet.
    pub ack: u64,
}

impl PacketRecord {
    /// Is this a pure acknowledgment?
    pub fn is_pure_ack(&self) -> bool {
        self.len == 0
    }
}

/// Configuration for [`TcpSim`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Bytes to transfer.
    pub transfer_bytes: u64,
    /// Maximum segment size.
    pub mss: u32,
    /// One-way propagation delay (RTT = 2×).
    pub one_way_delay: SimDuration,
    /// Bottleneck rate in bytes/second (pacing at the sender).
    pub rate_bytes_per_sec: u64,
    /// Initial congestion window in segments.
    pub initial_cwnd: u32,
    /// Per-segment loss probability (data direction only).
    pub loss: f64,
    /// RNG seed (loss draws).
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            transfer_bytes: 10 * 1024 * 1024,
            mss: 1448,
            one_way_delay: SimDuration::from_millis(40),
            rate_bytes_per_sec: 2_000_000,
            initial_cwnd: 10,
            loss: 0.0,
            seed: 0x7C9,
        }
    }
}

/// The simulator's output: header traces at both ends.
#[derive(Clone, Debug, Default)]
pub struct TcpTrace {
    /// Data packets as sent (timestamped at the sender's egress).
    pub data_sent: Vec<PacketRecord>,
    /// Data packets as received (sender's egress + one-way delay,
    /// lost segments excluded).
    pub data_received: Vec<PacketRecord>,
    /// Pure ACKs as sent by the receiver.
    pub acks_sent: Vec<PacketRecord>,
    /// Pure ACKs as received by the sender.
    pub acks_received: Vec<PacketRecord>,
    /// When the last byte was acknowledged.
    pub completed_at: SimTime,
}

#[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Ev {
    /// Data segment arrives at receiver (seq, len).
    Arrive(u64, u32),
    /// ACK arrives at sender (cumulative ack).
    AckArrive(u64),
    /// Retransmission timer check.
    Rto,
}

/// The TCP simulator. Construct with [`TcpSim::new`], then call
/// [`TcpSim::run`] once.
pub struct TcpSim {
    config: TcpConfig,
    rng: StdRng,
}

impl TcpSim {
    /// Create a simulator.
    ///
    /// # Panics
    /// Panics on degenerate configs (zero MSS/rate/transfer).
    pub fn new(config: TcpConfig) -> Self {
        assert!(config.mss > 0 && config.rate_bytes_per_sec > 0);
        assert!(config.transfer_bytes > 0);
        assert!((0.0..1.0).contains(&config.loss));
        let rng = StdRng::seed_from_u64(config.seed);
        TcpSim { config, rng }
    }

    /// Run the transfer to completion and return the traces.
    pub fn run(mut self) -> TcpTrace {
        let c = self.config.clone();
        let mss = u64::from(c.mss);
        let mut trace = TcpTrace::default();

        // Event queue keyed by (time, seq#) for determinism.
        let mut queue: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
        let mut evseq = 0u64;
        let push = |q: &mut BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
                        evseq: &mut u64,
                        at: SimTime,
                        ev: Ev| {
            *evseq += 1;
            q.push(Reverse((at, *evseq, ev)));
        };

        // Sender state.
        let mut next_seq = 0u64; // next new byte to send
        let mut snd_una = 0u64; // lowest unacked byte
        let mut cwnd = f64::from(c.initial_cwnd); // in MSS
        let mut ssthresh = f64::INFINITY;
        let mut dup_acks = 0u32;
        let mut egress_free_at = SimTime::ZERO; // pacing
        let mut now = SimTime::ZERO;
        let mut last_progress = SimTime::ZERO;
        let rto = SimDuration(c.one_way_delay.0 * 6).max(SimDuration::from_millis(200));
        // Receiver state: contiguous received watermark + out-of-order
        // segments (seq → len).
        let mut rcv_next = 0u64;
        let mut ooo: BTreeMap<u64, u32> = BTreeMap::new();

        // Helper: send (or resend) the segment starting at `seq`.
        // Serialization at the bottleneck paces departures.
        macro_rules! send_segment {
            ($seq:expr) => {{
                let seq: u64 = $seq;
                let len = (c.transfer_bytes - seq).min(mss) as u32;
                let depart = egress_free_at.max(now);
                let ser =
                    SimDuration((u64::from(len) * 1_000_000) / c.rate_bytes_per_sec);
                egress_free_at = depart + ser;
                let rec = PacketRecord {
                    at: egress_free_at,
                    seq,
                    len,
                    ack: 0,
                };
                trace.data_sent.push(rec);
                if self.rng.gen_bool(1.0 - c.loss) {
                    push(
                        &mut queue,
                        &mut evseq,
                        egress_free_at + c.one_way_delay,
                        Ev::Arrive(seq, len),
                    );
                }
                len
            }};
        }

        // Fill the initial window.
        let in_flight = |next_seq: u64, snd_una: u64| next_seq.saturating_sub(snd_una);
        while next_seq < c.transfer_bytes
            && in_flight(next_seq, snd_una) + mss <= (cwnd * mss as f64) as u64
        {
            let len = send_segment!(next_seq);
            next_seq += u64::from(len);
        }
        push(&mut queue, &mut evseq, now + rto, Ev::Rto);

        let mut guard = 0u64;
        while let Some(Reverse((at, _, ev))) = queue.pop() {
            guard += 1;
            assert!(guard < 50_000_000, "runaway TCP simulation");
            now = at;
            match ev {
                Ev::Arrive(seq, len) => {
                    trace.data_received.push(PacketRecord {
                        at: now,
                        seq,
                        len,
                        ack: 0,
                    });
                    if seq == rcv_next {
                        rcv_next += u64::from(len);
                        // Coalesce any buffered contiguous segments.
                        while let Some((&s, &l)) = ooo.first_key_value() {
                            if s <= rcv_next {
                                ooo.pop_first();
                                rcv_next = rcv_next.max(s + u64::from(l));
                            } else {
                                break;
                            }
                        }
                    } else if seq > rcv_next {
                        ooo.insert(seq, len);
                    }
                    // Cumulative ACK for every data segment.
                    let ack = PacketRecord {
                        at: now,
                        seq: 0,
                        len: 0,
                        ack: rcv_next,
                    };
                    trace.acks_sent.push(ack);
                    push(
                        &mut queue,
                        &mut evseq,
                        now + c.one_way_delay,
                        Ev::AckArrive(rcv_next),
                    );
                }
                Ev::AckArrive(ack) => {
                    trace.acks_received.push(PacketRecord {
                        at: now,
                        seq: 0,
                        len: 0,
                        ack,
                    });
                    if ack > snd_una {
                        // New data acked: grow cwnd.
                        let acked_segs = ((ack - snd_una) as f64 / mss as f64).ceil();
                        if cwnd < ssthresh {
                            cwnd += acked_segs; // slow start
                        } else {
                            cwnd += acked_segs / cwnd; // congestion avoidance
                        }
                        snd_una = ack;
                        dup_acks = 0;
                        last_progress = now;
                        if snd_una >= c.transfer_bytes {
                            trace.completed_at = now;
                            break;
                        }
                    } else if ack == snd_una && snd_una < next_seq {
                        dup_acks += 1;
                        if dup_acks == 3 {
                            // Fast retransmit + multiplicative decrease.
                            ssthresh = (cwnd / 2.0).max(2.0);
                            cwnd = ssthresh;
                            send_segment!(snd_una);
                        }
                    }
                    // Send whatever the window now allows.
                    while next_seq < c.transfer_bytes
                        && in_flight(next_seq, snd_una) + mss
                            <= (cwnd * mss as f64) as u64
                    {
                        let len = send_segment!(next_seq);
                        next_seq += u64::from(len);
                    }
                }
                Ev::Rto => {
                    if snd_una >= c.transfer_bytes {
                        break;
                    }
                    if now.since(last_progress) >= rto && snd_una < next_seq {
                        // Timeout: retransmit the first unacked segment,
                        // collapse the window.
                        ssthresh = (cwnd / 2.0).max(2.0);
                        cwnd = f64::from(c.initial_cwnd).min(ssthresh).max(1.0);
                        dup_acks = 0;
                        send_segment!(snd_una);
                        last_progress = now;
                    }
                    push(&mut queue, &mut evseq, now + rto, Ev::Rto);
                }
            }
        }
        if trace.completed_at == SimTime::ZERO {
            trace.completed_at = now;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(config: TcpConfig) -> TcpTrace {
        TcpSim::new(config).run()
    }

    #[test]
    fn lossless_transfer_completes_and_conserves_bytes() {
        let cfg = TcpConfig {
            transfer_bytes: 1_000_000,
            ..Default::default()
        };
        let t = run(cfg.clone());
        // All bytes delivered exactly once (no loss ⇒ no retransmits).
        let sent: u64 = t.data_sent.iter().map(|p| u64::from(p.len)).sum();
        assert_eq!(sent, cfg.transfer_bytes);
        let recv: u64 = t.data_received.iter().map(|p| u64::from(p.len)).sum();
        assert_eq!(recv, cfg.transfer_bytes);
        // Final ACK covers the whole transfer.
        assert_eq!(
            t.acks_received.last().unwrap().ack,
            cfg.transfer_bytes
        );
        assert!(t.completed_at > SimTime::ZERO);
    }

    #[test]
    fn acks_are_cumulative_and_monotone() {
        let t = run(TcpConfig {
            transfer_bytes: 500_000,
            loss: 0.02,
            ..Default::default()
        });
        let mut prev = 0u64;
        for a in &t.acks_sent {
            assert!(a.ack >= prev, "ACK went backwards");
            prev = a.ack;
        }
    }

    #[test]
    fn lossy_transfer_still_completes() {
        let cfg = TcpConfig {
            transfer_bytes: 300_000,
            loss: 0.05,
            seed: 7,
            ..Default::default()
        };
        let t = run(cfg.clone());
        assert_eq!(t.acks_received.last().unwrap().ack, cfg.transfer_bytes);
        // Retransmissions happened: more bytes sent than the file size.
        let sent: u64 = t.data_sent.iter().map(|p| u64::from(p.len)).sum();
        assert!(sent > cfg.transfer_bytes);
    }

    #[test]
    fn throughput_respects_bottleneck() {
        let cfg = TcpConfig {
            transfer_bytes: 4_000_000,
            rate_bytes_per_sec: 1_000_000,
            ..Default::default()
        };
        let t = run(cfg.clone());
        let secs = t.completed_at.as_secs_f64();
        // Can't beat the bottleneck; shouldn't be much slower either.
        assert!(secs >= 4.0, "faster than the bottleneck: {secs}");
        assert!(secs < 8.0, "unreasonably slow: {secs}");
    }

    #[test]
    fn slow_start_ramps_up() {
        let t = run(TcpConfig {
            transfer_bytes: 2_000_000,
            ..Default::default()
        });
        // Bytes delivered in the first RTT window should be much less
        // than in a later window of the same length (the ramp).
        let window = 0.08; // one RTT
        let bytes_in = |from: f64, to: f64| -> u64 {
            t.data_received
                .iter()
                .filter(|p| {
                    let s = p.at.as_secs_f64();
                    s >= from && s < to
                })
                .map(|p| u64::from(p.len))
                .sum()
        };
        let first = bytes_in(0.0, window);
        let later = bytes_in(4.0 * window, 5.0 * window);
        assert!(
            later > first * 2,
            "no ramp: first={first} later={later}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TcpConfig {
            transfer_bytes: 200_000,
            loss: 0.03,
            ..Default::default()
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.data_sent, b.data_sent);
        assert_eq!(a.acks_received, b.acks_received);
    }

    #[test]
    #[should_panic]
    fn zero_transfer_panics() {
        let _ = TcpSim::new(TcpConfig {
            transfer_bytes: 0,
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Whatever the loss rate and size, the transfer completes, the
        /// receiver's final cumulative ACK equals the file size, and
        /// ACKs never run ahead of delivered contiguous data.
        #[test]
        fn completion_and_ack_sanity(
            kb in 16u64..256,
            loss in 0.0f64..0.15,
            seed in any::<u64>(),
        ) {
            let cfg = TcpConfig {
                transfer_bytes: kb * 1024,
                loss,
                seed,
                ..Default::default()
            };
            let t = TcpSim::new(cfg.clone()).run();
            prop_assert_eq!(
                t.acks_received.last().unwrap().ack,
                cfg.transfer_bytes
            );
            let mut prev = 0;
            for a in &t.acks_sent {
                prop_assert!(a.ack >= prev);
                prop_assert!(a.ack <= cfg.transfer_bytes);
                prev = a.ack;
            }
        }
    }
}
