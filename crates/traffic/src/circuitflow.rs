//! A file download chained across the four segments of a Tor circuit.
//!
//! Reproduces the paper's wide-area experiment (wget of a large file
//! through Tor, tcpdump at both ends) in simulation. Tor carries traffic
//! hop-by-hop: each segment (server→exit, exit→middle, middle→guard,
//! guard→client) is its own TCP connection, and relays repackage the
//! stream into 512-byte cells. We simulate the first segment with the
//! full TCP model and propagate the byte arrival schedule through the
//! relay chain with store-and-forward latency, per-hop rate limits, and
//! cell quantization; each downstream segment then carries its own
//! cumulative ACK stream back.
//!
//! The output is a [`Capture`] per (segment, direction) — eight in all —
//! of which the paper plots four in Fig 2 (right).

use crate::capture::Capture;
use crate::tcp::{PacketRecord, TcpConfig, TcpSim};
use quicksand_net::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The four segments of a download circuit, in data-flow order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Segment {
    /// Server → exit relay.
    ServerExit,
    /// Exit → middle relay.
    ExitMiddle,
    /// Middle → guard relay.
    MiddleGuard,
    /// Guard → client.
    GuardClient,
}

impl Segment {
    /// All four segments in data-flow order.
    pub const ALL: [Segment; 4] = [
        Segment::ServerExit,
        Segment::ExitMiddle,
        Segment::MiddleGuard,
        Segment::GuardClient,
    ];

    /// Human-readable label of the data direction.
    pub fn data_label(self) -> &'static str {
        match self {
            Segment::ServerExit => "server→exit",
            Segment::ExitMiddle => "exit→middle",
            Segment::MiddleGuard => "middle→guard",
            Segment::GuardClient => "guard→client",
        }
    }

    /// Human-readable label of the ACK direction.
    pub fn ack_label(self) -> &'static str {
        match self {
            Segment::ServerExit => "exit→server (acks)",
            Segment::ExitMiddle => "middle→exit (acks)",
            Segment::MiddleGuard => "guard→middle (acks)",
            Segment::GuardClient => "client→guard (acks)",
        }
    }
}

/// Configuration for [`CircuitFlow::simulate`].
#[derive(Clone, Debug)]
pub struct CircuitFlowConfig {
    /// TCP parameters of the server→exit segment (file size, loss, …).
    pub first_hop: TcpConfig,
    /// One-way latency of each relay hop (exit→middle, middle→guard,
    /// guard→client).
    pub hop_delay: [SimDuration; 3],
    /// Forwarding rate of each relay in bytes/second (relays are the
    /// usual bottleneck in Tor).
    pub hop_rate: [u64; 3],
    /// Tor cell payload size: relays emit data in cell-sized units.
    pub cell_bytes: u32,
}

impl Default for CircuitFlowConfig {
    fn default() -> Self {
        CircuitFlowConfig {
            first_hop: TcpConfig::default(),
            hop_delay: [
                SimDuration::from_millis(30),
                SimDuration::from_millis(45),
                SimDuration::from_millis(25),
            ],
            // Relays forward faster than the first-hop TCP bottleneck
            // (2 MB/s): without modeling Tor's per-hop flow control,
            // a slower relay would let queues grow unboundedly, which
            // real Tor prevents by circuit windows.
            hop_rate: [3_000_000, 2_600_000, 2_800_000],
            cell_bytes: 498, // 512-byte cell minus header overhead
        }
    }
}

/// The captures of a simulated circuit download.
#[derive(Clone, Debug)]
pub struct CircuitFlow {
    /// Data-direction capture per segment (cumulative bytes sent).
    pub data: [Capture; 4],
    /// ACK-direction capture per segment (cumulative bytes acked).
    pub acks: [Capture; 4],
    /// When the last byte reached the client.
    pub completed_at: SimTime,
}

impl CircuitFlow {
    /// Run the download and capture all eight segment directions.
    pub fn simulate(config: &CircuitFlowConfig) -> CircuitFlow {
        // Segment 1: full TCP simulation server→exit.
        let trace = TcpSim::new(config.first_hop.clone()).run();
        let mut data = Vec::with_capacity(4);
        let mut acks = Vec::with_capacity(4);
        data.push(Capture::from_data(
            Segment::ServerExit.data_label(),
            &trace.data_sent,
        ));
        acks.push(Capture::from_acks(
            Segment::ServerExit.ack_label(),
            &trace.acks_sent,
        ));

        // Downstream segments: store-and-forward relays.
        let mut arrivals: Vec<PacketRecord> = trace.data_received;
        let mut completed_at = trace.completed_at;
        for (k, segment) in [
            Segment::ExitMiddle,
            Segment::MiddleGuard,
            Segment::GuardClient,
        ]
        .into_iter()
        .enumerate()
        {
            let (sent, received, hop_acks) = forward_hop(
                &arrivals,
                config.hop_delay[k],
                config.hop_rate[k],
                config.cell_bytes,
            );
            data.push(Capture::from_data(segment.data_label(), &sent));
            acks.push(Capture::from_acks(segment.ack_label(), &hop_acks));
            if let Some(last) = received.last() {
                completed_at = completed_at.max(last.at);
            }
            arrivals = received;
        }

        CircuitFlow {
            data: [
                data.remove(0),
                data.remove(0),
                data.remove(0),
                data.remove(0),
            ],
            acks: [
                acks.remove(0),
                acks.remove(0),
                acks.remove(0),
                acks.remove(0),
            ],
            completed_at,
        }
    }

    /// The capture of one (segment, direction).
    pub fn capture(&self, segment: Segment, data_dir: bool) -> &Capture {
        let i = Segment::ALL.iter().position(|&s| s == segment).unwrap();
        if data_dir {
            &self.data[i]
        } else {
            &self.acks[i]
        }
    }
}

/// Forward a byte-arrival schedule across one relay hop: cell
/// quantization, rate pacing, store-and-forward delay. Returns
/// `(sent at relay egress, received downstream, acks sent downstream)`.
fn forward_hop(
    arrivals: &[PacketRecord],
    delay: SimDuration,
    rate: u64,
    cell_bytes: u32,
) -> (Vec<PacketRecord>, Vec<PacketRecord>, Vec<PacketRecord>) {
    let mut sent = Vec::new();
    let mut received = Vec::new();
    let mut acks = Vec::new();
    let mut egress_free = SimTime::ZERO;
    let mut buffered: u64 = 0; // bytes awaiting cellization
    let mut seq = 0u64;
    let mut acked = 0u64;
    let cell = u64::from(cell_bytes);

    let mut emit = |at: SimTime,
                    len: u32,
                    seq: &mut u64,
                    acked: &mut u64,
                    egress_free: &mut SimTime| {
        let depart = (*egress_free).max(at);
        let ser = SimDuration((u64::from(len) * 1_000_000) / rate.max(1));
        *egress_free = depart + ser;
        sent.push(PacketRecord {
            at: *egress_free,
            seq: *seq,
            len,
            ack: 0,
        });
        let arrive = *egress_free + delay;
        received.push(PacketRecord {
            at: arrive,
            seq: *seq,
            len,
            ack: 0,
        });
        *seq += u64::from(len);
        *acked = *seq;
        // The downstream endpoint acks cumulatively; the ACK passes the
        // segment in the reverse direction shortly after arrival.
        acks.push(PacketRecord {
            at: arrive,
            seq: 0,
            len: 0,
            ack: *acked,
        });
    };

    for p in arrivals {
        buffered += u64::from(p.len);
        while buffered >= cell {
            emit(p.at, cell as u32, &mut seq, &mut acked, &mut egress_free);
            buffered -= cell;
        }
    }
    // Flush the final partial cell.
    if buffered > 0 {
        let at = arrivals.last().map_or(SimTime::ZERO, |p| p.at);
        emit(at, buffered as u32, &mut seq, &mut acked, &mut egress_free);
    }
    (sent, received, acks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_flow() -> CircuitFlow {
        let config = CircuitFlowConfig {
            first_hop: TcpConfig {
                transfer_bytes: 2 * 1024 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        CircuitFlow::simulate(&config)
    }

    #[test]
    fn all_segments_carry_the_full_file() {
        let f = small_flow();
        let size = 2 * 1024 * 1024;
        for (i, c) in f.data.iter().enumerate() {
            assert_eq!(c.series.total(), size, "segment {i} lost bytes");
        }
        for (i, c) in f.acks.iter().enumerate() {
            assert_eq!(c.series.total(), size, "segment {i} acks incomplete");
        }
    }

    #[test]
    fn bytes_flow_downstream_later() {
        let f = small_flow();
        // Each subsequent segment completes no earlier than the previous.
        let ends: Vec<SimTime> = f
            .data
            .iter()
            .map(|c| c.series.end_time().unwrap())
            .collect();
        for w in ends.windows(2) {
            assert!(w[1] >= w[0], "downstream finished before upstream");
        }
        assert!(f.completed_at >= ends[3]);
    }

    #[test]
    fn curves_are_nearly_identical_across_segments() {
        // The Fig-2-right claim: data sent and bytes acked at all
        // segments track each other closely over time.
        let f = small_flow();
        let end = f.completed_at;
        let reference = &f.data[0].series;
        for c in f.data.iter().skip(1).chain(f.acks.iter()) {
            // Compare at 20 sample points: curves within a small offset
            // of each other (lag ≤ a few hundred ms of transfer).
            let mut max_rel_gap: f64 = 0.0;
            for k in 1..=20 {
                let t = SimTime(end.0 * k / 20);
                let a = reference.at(t) as f64;
                let b = c.series.at(t) as f64;
                let gap = (a - b).abs() / reference.total() as f64;
                max_rel_gap = max_rel_gap.max(gap);
            }
            assert!(
                max_rel_gap < 0.15,
                "{}: diverges from server→exit by {max_rel_gap:.3}",
                c.label
            );
        }
    }

    #[test]
    fn cell_quantization_shapes_downstream_packets() {
        let f = small_flow();
        // Downstream data packets are cell-sized (except the last).
        let cfg = CircuitFlowConfig::default();
        let pkts = &f.data[1];
        let _ = pkts;
        // Validate via forward_hop directly for precision:
        let arrivals = vec![
            PacketRecord {
                at: SimTime::from_millis(0),
                seq: 0,
                len: 1200,
                ack: 0,
            },
            PacketRecord {
                at: SimTime::from_millis(10),
                seq: 1200,
                len: 100,
                ack: 0,
            },
        ];
        let (sent, received, acks) =
            forward_hop(&arrivals, SimDuration::from_millis(5), 1_000_000, 498);
        let lens: Vec<u32> = sent.iter().map(|p| p.len).collect();
        assert_eq!(lens, vec![498, 498, 304]);
        assert_eq!(received.len(), 3);
        // Cumulative acks track delivered bytes.
        assert_eq!(acks.last().unwrap().ack, 1300);
        let _ = cfg;
    }

    #[test]
    fn deterministic() {
        let a = small_flow();
        let b = small_flow();
        assert_eq!(a.data[3], b.data[3]);
        assert_eq!(a.acks[0], b.acks[0]);
    }
}
