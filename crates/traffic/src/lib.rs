//! Traffic generation and (asymmetric) traffic analysis (§3.3, §4).
//!
//! The paper's wide-area experiment downloads a large file over Tor and
//! shows (Fig 2, right) that the bytes *sent* and the bytes
//! *acknowledged* — recovered purely from cleartext TCP headers — are
//! nearly identical over time at all four segments of the path. An
//! AS-level adversary therefore only needs to see **one direction at
//! each end**, in any combination.
//!
//! This crate rebuilds that experiment in simulation:
//!
//! * [`TcpSim`] — an event-driven, header-faithful TCP bulk-transfer
//!   simulator (slow start, AIMD, cumulative ACKs, optional loss) that
//!   emits timestamped [`PacketRecord`]s.
//! * [`CircuitFlow`] — a download chained across the four segments of a
//!   Tor circuit (server→exit→middle→guard→client), with Tor's 512-byte
//!   cell quantization and per-hop latency, producing captures at every
//!   segment in both directions.
//! * [`capture`] — vantage-point views: cumulative bytes *sent* (data
//!   direction) or *acknowledged* (ACK direction, from TCP header ack
//!   numbers — the paper's key observation that ACK streams leak the
//!   transfer profile).
//! * [`correlate`] — binned increment cross-correlation with lag search,
//!   and circuit matching among decoys: the deanonymization decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
mod circuitflow;
pub mod correlate;
mod tcp;

pub use capture::{ByteSeries, Capture, Direction};
pub use circuitflow::{CircuitFlow, CircuitFlowConfig, Segment};
pub use tcp::{PacketRecord, TcpConfig, TcpSim};
