//! The flight recorder: a bounded ring-buffer [`Subscriber`].
//!
//! A [`RingSubscriber`] retains the last N events that passed through
//! it, each stamped with a monotonically increasing sequence number.
//! The supervisor installs one per `ScenarioCell` attempt (fanned out
//! with whatever sink is already active); when the attempt dies —
//! panic, stall, error, or quarantine — the ring holds the cell's
//! final seconds of telemetry, which [`write_postmortem`] appends to a
//! JSONL post-mortem file alongside the cell's checkpoint store.
//!
//! The ring accepts every level regardless of the outer sink's
//! filtering (a flight recorder that only records what the console
//! wanted to print would be useless), so installing one also makes
//! `obs::enabled(...)` return true on that thread — breadcrumb events
//! become visible exactly where a post-mortem might need them.

use crate::event::{Event, Level};
use crate::subscriber::Subscriber;
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Default ring capacity used by the supervisor's per-cell recorders.
pub const DEFAULT_RING_CAP: usize = 256;

struct RingState {
    next_seq: u64,
    events: VecDeque<(u64, Event)>,
}

/// A bounded ring buffer of the most recent events.
pub struct RingSubscriber {
    cap: usize,
    state: Mutex<RingState>,
}

impl RingSubscriber {
    /// A ring retaining the most recent `cap` events (`cap` is clamped
    /// to at least 1).
    pub fn with_capacity(cap: usize) -> RingSubscriber {
        let cap = cap.max(1);
        RingSubscriber {
            cap,
            state: Mutex::new(RingState {
                next_seq: 0,
                events: VecDeque::with_capacity(cap),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Total events ever pushed through the ring (including evicted
    /// ones): the next event's sequence number.
    pub fn seen(&self) -> u64 {
        self.lock().next_seq
    }

    /// Copy the buffered `(seq, event)` pairs, oldest first, without
    /// clearing them.
    pub fn snapshot(&self) -> Vec<(u64, Event)> {
        self.lock().events.iter().cloned().collect()
    }

    /// Take the buffered `(seq, event)` pairs, oldest first, leaving
    /// the ring empty (sequence numbering continues).
    pub fn drain(&self) -> Vec<(u64, Event)> {
        self.lock().events.drain(..).collect()
    }
}

impl Subscriber for RingSubscriber {
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    fn event(&self, event: &Event) {
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.cap {
            state.events.pop_front();
        }
        state.events.push_back((seq, event.clone()));
    }
}

/// Append `events` (and an optional `footer` event describing why the
/// post-mortem exists) to the JSONL file at `path`, one
/// `{"seq": N, "event": {...}}` object per line. Appending keeps every
/// attempt's final telemetry when a cell fails more than once; the
/// file is created on first use.
pub fn write_postmortem(
    path: &Path,
    events: &[(u64, Event)],
    footer: Option<&Event>,
) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut out = BufWriter::new(file);
    for (seq, event) in events {
        write_line(&mut out, Some(*seq), event)?;
    }
    if let Some(event) = footer {
        let seq = events.last().map(|(s, _)| s + 1);
        write_line(&mut out, seq, event)?;
    }
    out.flush()
}

fn write_line(out: &mut impl Write, seq: Option<u64>, event: &Event) -> std::io::Result<()> {
    let mut fields = Vec::with_capacity(2);
    if let Some(seq) = seq {
        fields.push((Value::Str("seq".into()), Value::U64(seq)));
    }
    fields.push((Value::Str("event".into()), event.to_value()));
    let line = serde_json::to_string(&Value::Map(fields))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::new(Level::Debug, "supervisor", "checkpoint", "beat").with("cursor", n)
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let ring = RingSubscriber::with_capacity(3);
        for i in 0..5 {
            ring.event(&ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 5);
        let got = ring.snapshot();
        let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(got[0].1.field("cursor").unwrap().as_f64(), Some(2.0));
        // Snapshot does not clear; drain does, but numbering continues.
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.is_empty());
        ring.event(&ev(99));
        assert_eq!(ring.snapshot()[0].0, 5);
    }

    #[test]
    fn ring_accepts_every_level() {
        let ring = RingSubscriber::with_capacity(8);
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert!(ring.enabled(level));
        }
    }

    #[test]
    fn postmortem_file_is_appendable_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "quicksand-ring-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("postmortem-cell0.jsonl");
        let ring = RingSubscriber::with_capacity(4);
        for i in 0..2 {
            ring.event(&ev(i));
        }
        let footer =
            Event::new(Level::Warn, "supervisor", "postmortem", "panic: boom").with("attempt", 0u64);
        write_postmortem(&path, &ring.drain(), Some(&footer)).unwrap();
        // Second attempt appends rather than truncating.
        ring.event(&ev(7));
        write_postmortem(&path, &ring.drain(), None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.field("event").is_some());
        }
        assert!(lines[2].contains("postmortem"));
        assert!(lines[2].contains("\"seq\":2"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
