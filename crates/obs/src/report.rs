//! Machine-readable run reports.
//!
//! A [`RunReport`] is the end-of-run artifact written by
//! `repro --obs-out=run.json`: per-stage wall time (from the `wall_ms`
//! profiling histograms recorded by [`crate::timed`]), a full metric
//! [`Snapshot`], and the alarm timeline extracted from buffered monitor
//! events. `repro report run.json` pretty-prints one report or diffs
//! two; [`RunReport::validate`] is the CI schema gate that fails a run
//! missing any of the six instrumented stages.

use crate::event::Event;
use crate::metrics::Snapshot;
use serde::{Deserialize, Serialize};

/// Report schema version, bumped on incompatible changes.
pub const REPORT_VERSION: u32 = 1;

/// The six pipeline stages every full run must profile. A report
/// missing wall time or metrics for any of these fails validation.
pub const REQUIRED_STAGES: [&str; 6] = [
    "topology",
    "churn",
    "collector",
    "monitor",
    "detect",
    "correlate",
];

/// Wall-time profile of one pipeline stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (see [`REQUIRED_STAGES`]).
    pub stage: String,
    /// Number of timed spans recorded for the stage.
    pub calls: u64,
    /// Total wall time across all spans, milliseconds.
    pub wall_ms_total: f64,
    /// Mean span duration, milliseconds.
    pub wall_ms_mean: f64,
    /// Estimated p95 span duration, milliseconds.
    pub wall_ms_p95: f64,
    /// Longest span, milliseconds.
    pub wall_ms_max: f64,
}

/// One monitor alarm, lifted from the event stream into the report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlarmEntry {
    /// Simulation time of the alarm, seconds.
    pub at_s: f64,
    /// The prefix the alarm fired for.
    pub prefix: String,
    /// Alarm kind (`"origin-change"`, `"more-specific"`, ...).
    pub kind: String,
    /// Monitor confidence in `[0, 1]`, when scored.
    pub confidence: Option<f64>,
}

/// Fleet-level supervisor summary, present only on reports written by
/// a supervised (`repro serve`) run. Assembled from the `supervisor`
/// obs stage; absent (and absent from the JSON) on batch runs, so the
/// schema stays backward-compatible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SupervisorSection {
    /// Scenario cells admitted.
    pub cells: u64,
    /// Cells that completed their month.
    pub completed: u64,
    /// Cells quarantined after exhausting the restart budget (includes
    /// infrastructure failures, which are isolated the same way).
    pub quarantined: u64,
    /// Restarts consumed across the fleet.
    pub restarts: u64,
    /// Watchdog trips (progress-deadline violations).
    pub watchdog_trips: u64,
    /// Panics contained by `catch_unwind`.
    pub panics: u64,
    /// Stalls cancelled by the watchdog.
    pub stalls: u64,
    /// Submissions shed at admission (reject-new load shedding).
    pub shed: u64,
    /// Cells that completed but needed restarts or tripped the
    /// watchdog on the way.
    pub degraded: u64,
}

impl SupervisorSection {
    /// Build the section from a metric snapshot, when the run recorded
    /// any `supervisor`-stage metrics at all.
    fn from_snapshot(metrics: &Snapshot) -> Option<SupervisorSection> {
        if !metrics.has_stage_metrics("supervisor") {
            return None;
        }
        let counter = |name: &str| {
            metrics
                .counters
                .iter()
                .find(|c| c.stage == "supervisor" && c.name == name && c.session.is_none())
                .map_or(0, |c| c.value)
        };
        let gauge = |name: &str| {
            metrics
                .gauges
                .iter()
                .find(|g| g.stage == "supervisor" && g.name == name && g.session.is_none())
                .map_or(0.0, |g| g.value)
        };
        Some(SupervisorSection {
            cells: counter("cells"),
            completed: counter("completed"),
            quarantined: counter("quarantined") + counter("failed"),
            restarts: counter("restarts"),
            watchdog_trips: counter("watchdog_trips"),
            panics: counter("panics"),
            stalls: counter("stalls"),
            shed: counter("shed"),
            degraded: gauge("degraded") as u64,
        })
    }
}

/// One aggregated span call path in a [`ProfileSection`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileSpanEntry {
    /// Semicolon-joined `stage.name` frames, root first (collapsed-
    /// stack path).
    pub path: String,
    /// Completed activations.
    pub count: u64,
    /// Wall time excluding child spans, microseconds.
    pub self_us: f64,
    /// Wall time including child spans, microseconds.
    pub total_us: f64,
    /// Allocations excluding child spans (0 without an alloc probe).
    pub self_allocs: u64,
    /// Allocations including child spans.
    pub total_allocs: u64,
}

/// Span-profiler summary, attached to reports written with profiling
/// enabled (`repro --profile-out`). Wall-clock content through and
/// through, so [`RunReport::normalized`] strips it — old-schema files
/// without the section and new files with it `--check` identically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileSection {
    /// Sampling in effect (`1` = every top-level activation recorded).
    pub sample_every: u64,
    /// Spans dropped to depth/node-table limits.
    pub dropped: u64,
    /// Aggregated call paths, sorted by path.
    pub spans: Vec<ProfileSpanEntry>,
}

impl From<&crate::prof::Profile> for ProfileSection {
    fn from(profile: &crate::prof::Profile) -> ProfileSection {
        ProfileSection {
            sample_every: profile.sample_every,
            dropped: profile.dropped,
            spans: profile
                .entries
                .iter()
                .map(|e| ProfileSpanEntry {
                    path: e.path.clone(),
                    count: e.count,
                    self_us: e.self_ns as f64 / 1_000.0,
                    total_us: e.total_ns as f64 / 1_000.0,
                    self_allocs: e.self_allocs,
                    total_allocs: e.total_allocs,
                })
                .collect(),
        }
    }
}

/// The complete machine-readable record of one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Caller-supplied label (scenario / figure set / git describe).
    pub label: String,
    /// Per-stage wall-time profiles, ordered by stage name.
    pub stages: Vec<StageReport>,
    /// Full metric snapshot at end of run.
    pub metrics: Snapshot,
    /// Alarm timeline, in emission order.
    pub alarms: Vec<AlarmEntry>,
    /// Supervisor summary — only on supervised (`repro serve`) runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub supervisor: Option<SupervisorSection>,
    /// Span-profiler summary — only on runs with profiling enabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<ProfileSection>,
}

impl RunReport {
    /// Build a report from a metric snapshot and the buffered event
    /// stream of a run.
    ///
    /// Stages come from the stage-level `wall_ms` histograms recorded
    /// by [`crate::timed`]; alarms from events named `"alarm"` in the
    /// `"monitor"` stage.
    pub fn assemble(label: impl Into<String>, metrics: &Snapshot, events: &[Event]) -> RunReport {
        let stages = metrics
            .histograms
            .iter()
            .filter(|h| h.name == crate::WALL_MS && h.session.is_none())
            .map(|h| StageReport {
                stage: h.stage.clone(),
                calls: h.stats.count,
                wall_ms_total: h.stats.sum,
                wall_ms_mean: h.stats.mean,
                wall_ms_p95: h.stats.p95,
                wall_ms_max: h.stats.max,
            })
            .collect();
        let alarms = events
            .iter()
            .filter(|e| e.stage == "monitor" && e.name == "alarm")
            .map(|e| AlarmEntry {
                at_s: e.field("at_s").and_then(|v| v.as_f64()).unwrap_or(0.0),
                prefix: e
                    .field("prefix")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string(),
                kind: e
                    .field("kind")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string(),
                confidence: e.field("confidence").and_then(|v| v.as_f64()),
            })
            .collect();
        RunReport {
            version: REPORT_VERSION,
            label: label.into(),
            stages,
            metrics: metrics.clone(),
            alarms,
            supervisor: SupervisorSection::from_snapshot(metrics),
            profile: None,
        }
    }

    /// Attach a span-profiler capture (builder style), omitting empty
    /// profiles so unprofiled runs keep the section absent.
    pub fn with_profile(mut self, profile: &crate::prof::Profile) -> RunReport {
        if !profile.is_empty() {
            self.profile = Some(ProfileSection::from(profile));
        }
        self
    }

    /// The stage profile for `stage`, if recorded.
    pub fn stage(&self, stage: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Schema validation. Batch reports: every
    /// [required stage](REQUIRED_STAGES) must have at least one timed
    /// span *and* a non-empty metric snapshot. Fleet reports (a
    /// `supervisor` section is present): the per-cell stage metrics
    /// live in the cells' private registries, so the six-stage rule
    /// does not apply; instead the supervisor accounting must be
    /// internally consistent. Returns every violation, not just the
    /// first.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.version != REPORT_VERSION {
            problems.push(format!(
                "report version {} != expected {}",
                self.version, REPORT_VERSION
            ));
        }
        if let Some(sup) = &self.supervisor {
            if sup.completed + sup.quarantined != sup.cells {
                problems.push(format!(
                    "supervisor: completed ({}) + quarantined ({}) != cells ({})",
                    sup.completed, sup.quarantined, sup.cells
                ));
            }
            if sup.degraded > sup.completed {
                problems.push(format!(
                    "supervisor: degraded ({}) > completed ({})",
                    sup.degraded, sup.completed
                ));
            }
            if !self.metrics.has_stage_metrics("supervisor") {
                problems.push("supervisor: section present but no stage metrics".to_string());
            }
        } else {
            for stage in REQUIRED_STAGES {
                match self.stage(stage) {
                    None => problems.push(format!("stage '{stage}': no wall-time profile")),
                    Some(s) if s.calls == 0 => {
                        problems.push(format!("stage '{stage}': zero timed calls"))
                    }
                    Some(_) => {}
                }
                if !self.metrics.has_stage_metrics(stage) {
                    problems.push(format!("stage '{stage}': empty metric snapshot"));
                }
            }
        }
        if let Some(profile) = &self.profile {
            for (i, span) in profile.spans.iter().enumerate() {
                if span.path.is_empty() {
                    problems.push(format!("profile: span {i} has an empty path"));
                }
                if span.count == 0 {
                    problems.push(format!(
                        "profile: span '{}' has zero activations",
                        span.path
                    ));
                }
                if span.self_us > span.total_us + 1e-9 {
                    problems.push(format!(
                        "profile: span '{}' self time exceeds total",
                        span.path
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Human-readable rendering for `repro report`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "run report: {} (schema v{})", self.label, self.version);
        let _ = writeln!(out, "\nstage wall time:");
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "stage", "calls", "total ms", "mean ms", "p95 ms", "max ms"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<12} {:>8} {:>12.2} {:>12.3} {:>12.3} {:>12.3}",
                s.stage, s.calls, s.wall_ms_total, s.wall_ms_mean, s.wall_ms_p95, s.wall_ms_max
            );
        }
        let _ = writeln!(
            out,
            "\nmetrics: {} counters, {} gauges, {} histograms",
            self.metrics.counters.len(),
            self.metrics.gauges.len(),
            self.metrics.histograms.len()
        );
        for c in &self.metrics.counters {
            match c.session {
                Some(sid) => {
                    let _ = writeln!(out, "  {}.{}[s{}] = {}", c.stage, c.name, sid, c.value);
                }
                None => {
                    let _ = writeln!(out, "  {}.{} = {}", c.stage, c.name, c.value);
                }
            }
        }
        for g in &self.metrics.gauges {
            match g.session {
                Some(sid) => {
                    let _ = writeln!(out, "  {}.{}[s{}] = {:.3}", g.stage, g.name, sid, g.value);
                }
                None => {
                    let _ = writeln!(out, "  {}.{} = {:.3}", g.stage, g.name, g.value);
                }
            }
        }
        for h in &self.metrics.histograms {
            if h.name == crate::WALL_MS {
                continue; // already shown in the stage table
            }
            let _ = writeln!(
                out,
                "  {}.{}: n={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
                h.stage,
                h.name,
                h.stats.count,
                h.stats.mean,
                h.stats.p50,
                h.stats.p90,
                h.stats.p99,
                h.stats.max
            );
        }
        if let Some(profile) = &self.profile {
            let _ = writeln!(
                out,
                "\nspan profile: {} paths, sample 1/{}, {} dropped",
                profile.spans.len(),
                profile.sample_every,
                profile.dropped
            );
            let _ = writeln!(
                out,
                "  {:<52} {:>10} {:>12} {:>12} {:>12}",
                "path", "count", "self ms", "total ms", "self allocs"
            );
            // Heaviest self-time first; the JSON keeps the full list.
            let mut spans: Vec<&ProfileSpanEntry> = profile.spans.iter().collect();
            spans.sort_by(|a, b| {
                b.self_us
                    .partial_cmp(&a.self_us)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for s in spans.iter().take(20) {
                let _ = writeln!(
                    out,
                    "  {:<52} {:>10} {:>12.2} {:>12.2} {:>12}",
                    s.path,
                    s.count,
                    s.self_us / 1_000.0,
                    s.total_us / 1_000.0,
                    s.self_allocs
                );
            }
        }
        if let Some(sup) = &self.supervisor {
            let _ = writeln!(
                out,
                "\nsupervisor: {} cells, {} completed ({} degraded), {} quarantined; \
                 {} restarts, {} watchdog trips, {} panics, {} stalls, {} shed",
                sup.cells,
                sup.completed,
                sup.degraded,
                sup.quarantined,
                sup.restarts,
                sup.watchdog_trips,
                sup.panics,
                sup.stalls,
                sup.shed
            );
        }
        let _ = writeln!(out, "\nalarms: {}", self.alarms.len());
        for a in &self.alarms {
            let conf = a
                .confidence
                .map(|c| format!(" confidence={c:.2}"))
                .unwrap_or_default();
            let _ = writeln!(out, "  t={:.0}s {} {}{}", a.at_s, a.prefix, a.kind, conf);
        }
        out
    }

    /// Project the report down to its *deterministic* content: the part
    /// that must be bitwise-identical between an uninterrupted run and
    /// an interrupted-then-resumed run of the same scenario, and
    /// between a serial run and a sharded (`--jobs N`) run.
    ///
    /// What goes: everything wall-clock (per-stage `wall_ms` totals in
    /// the stage table and the histogram snapshot, the `replay_rate`
    /// gauge), everything describing the recovery machinery itself
    /// (`recover`-stage metrics — an uninterrupted baseline has none by
    /// definition), and everything describing the execution engine
    /// (`parallel`-stage metrics — shard timings and fan-out counts
    /// exist only off the serial reference). What stays: stage call
    /// counts, every other counter and gauge, and the alarm timeline.
    pub fn normalized(&self) -> RunReport {
        let mut out = self.clone();
        for s in &mut out.stages {
            s.wall_ms_total = 0.0;
            s.wall_ms_mean = 0.0;
            s.wall_ms_p95 = 0.0;
            s.wall_ms_max = 0.0;
        }
        let engine = |stage: &str| {
            stage == "recover" || stage == "parallel" || stage == "supervisor"
        };
        out.stages.retain(|s| !engine(&s.stage));
        out.metrics.counters.retain(|c| !engine(&c.stage));
        out.metrics
            .gauges
            .retain(|g| !engine(&g.stage) && g.name != "replay_rate");
        out.metrics
            .histograms
            .retain(|h| !engine(&h.stage) && h.name != crate::WALL_MS);
        // Watchdog trips and restarts are wall-clock-dependent, so the
        // whole supervisor story is execution-engine content too.
        out.supervisor = None;
        // Span profiles are wall-clock through and through, and the
        // `_span_us` histograms they publish into the registry follow
        // them out.
        out.profile = None;
        out.metrics
            .histograms
            .retain(|h| !h.name.ends_with("_span_us"));
        out
    }

    /// The deterministic differences between two reports: counter
    /// deltas over the [normalized](RunReport::normalized) projection,
    /// plus gauge and alarm-count changes. Empty means the runs are
    /// equivalent wherever runs of the same scenario *can* be equal —
    /// the resume-exactness gate used by `repro report --check` and the
    /// kill-and-resume CI job.
    pub fn deterministic_deltas(&self, other: &RunReport) -> Vec<String> {
        let a = self.normalized();
        let b = other.normalized();
        let mut deltas = Vec::new();

        let mut keys: Vec<(String, String, Option<u32>)> = a
            .metrics
            .counters
            .iter()
            .chain(b.metrics.counters.iter())
            .map(|c| (c.stage.clone(), c.name.clone(), c.session))
            .collect();
        keys.sort();
        keys.dedup();
        let counter = |r: &RunReport, key: &(String, String, Option<u32>)| {
            r.metrics
                .counters
                .iter()
                .find(|c| c.stage == key.0 && c.name == key.1 && c.session == key.2)
                .map_or(0, |c| c.value)
        };
        for key in &keys {
            let (va, vb) = (counter(&a, key), counter(&b, key));
            if va != vb {
                let sid = key.2.map(|s| format!("[s{s}]")).unwrap_or_default();
                deltas.push(format!("counter {}.{}{sid}: {va} != {vb}", key.0, key.1));
            }
        }

        let mut gkeys: Vec<(String, String, Option<u32>)> = a
            .metrics
            .gauges
            .iter()
            .chain(b.metrics.gauges.iter())
            .map(|g| (g.stage.clone(), g.name.clone(), g.session))
            .collect();
        gkeys.sort();
        gkeys.dedup();
        let gauge = |r: &RunReport, key: &(String, String, Option<u32>)| {
            r.metrics
                .gauges
                .iter()
                .find(|g| g.stage == key.0 && g.name == key.1 && g.session == key.2)
                .map(|g| g.value)
        };
        for key in &gkeys {
            let (va, vb) = (gauge(&a, key), gauge(&b, key));
            // Bit-compare: resume-exactness promises identical floats.
            if va.map(f64::to_bits) != vb.map(f64::to_bits) {
                deltas.push(format!(
                    "gauge {}.{}: {va:?} != {vb:?}",
                    key.0, key.1
                ));
            }
        }

        if a.alarms != b.alarms {
            deltas.push(format!(
                "alarms: {} != {}",
                a.alarms.len(),
                b.alarms.len()
            ));
        }
        deltas
    }

    /// Compare two reports: per-stage wall-time deltas, counter deltas,
    /// and alarm-count change. `self` is the baseline, `other` the new
    /// run.
    pub fn diff(&self, other: &RunReport) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "report diff: '{}' -> '{}'", self.label, other.label);
        let _ = writeln!(out, "\nstage wall time (total ms):");
        let mut stages: Vec<&str> = self
            .stages
            .iter()
            .chain(other.stages.iter())
            .map(|s| s.stage.as_str())
            .collect();
        stages.sort_unstable();
        stages.dedup();
        for stage in stages {
            let a = self.stage(stage).map(|s| s.wall_ms_total);
            let b = other.stage(stage).map(|s| s.wall_ms_total);
            match (a, b) {
                (Some(a), Some(b)) => {
                    let pct = if a > 0.0 { (b - a) / a * 100.0 } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "  {stage:<12} {a:>12.2} -> {b:>12.2}  ({pct:+.1}%)"
                    );
                }
                (Some(a), None) => {
                    let _ = writeln!(out, "  {stage:<12} {a:>12.2} -> (absent)");
                }
                (None, Some(b)) => {
                    let _ = writeln!(out, "  {stage:<12}  (absent)  -> {b:>12.2}");
                }
                (None, None) => {}
            }
        }
        let _ = writeln!(out, "\ncounter deltas (changed only):");
        let mut any = false;
        let lookup = |report: &RunReport, stage: &str, name: &str, session: Option<u32>| {
            report
                .metrics
                .counters
                .iter()
                .find(|c| c.stage == stage && c.name == name && c.session == session)
                .map(|c| c.value)
        };
        let mut keys: Vec<(String, String, Option<u32>)> = self
            .metrics
            .counters
            .iter()
            .chain(other.metrics.counters.iter())
            .map(|c| (c.stage.clone(), c.name.clone(), c.session))
            .collect();
        keys.sort();
        keys.dedup();
        for (stage, name, session) in keys {
            let a = lookup(self, &stage, &name, session).unwrap_or(0);
            let b = lookup(other, &stage, &name, session).unwrap_or(0);
            if a != b {
                any = true;
                let sid = session.map(|s| format!("[s{s}]")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  {stage}.{name}{sid}: {a} -> {b} ({:+})",
                    b as i64 - a as i64
                );
            }
        }
        if !any {
            let _ = writeln!(out, "  (none)");
        }
        let _ = writeln!(
            out,
            "\nalarms: {} -> {} ({:+})",
            self.alarms.len(),
            other.alarms.len(),
            other.alarms.len() as i64 - self.alarms.len() as i64
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;
    use crate::metrics::{Key, Registry};

    fn full_registry() -> Registry {
        let r = Registry::new();
        for stage in REQUIRED_STAGES {
            r.observe(Key::stage(stage, crate::WALL_MS), 5.0);
            r.incr(
                Key {
                    stage,
                    name: "calls",
                    session: None,
                },
                1,
            );
        }
        r
    }

    #[test]
    fn assemble_collects_stages_and_alarms() {
        let r = full_registry();
        let events = vec![
            Event::new(Level::Info, "repro", "start", "x"),
            Event::new(Level::Warn, "monitor", "alarm", "origin change")
                .with("at_s", 42.0)
                .with("prefix", "10.0.0.0/8")
                .with("kind", "origin-change")
                .with("confidence", 0.9),
            Event::new(Level::Warn, "monitor", "stale", "not an alarm"),
        ];
        let rep = RunReport::assemble("test", &r.snapshot(), &events);
        assert_eq!(rep.stages.len(), 6);
        assert_eq!(rep.alarms.len(), 1);
        assert_eq!(rep.alarms[0].prefix, "10.0.0.0/8");
        assert_eq!(rep.alarms[0].confidence, Some(0.9));
        assert!(rep.validate().is_ok());
    }

    #[test]
    fn validate_reports_every_missing_stage() {
        let r = Registry::new();
        r.observe(Key::stage("topology", crate::WALL_MS), 1.0);
        r.incr(Key::stage("topology", "nodes"), 10);
        let rep = RunReport::assemble("partial", &r.snapshot(), &[]);
        let errs = rep.validate().unwrap_err();
        // Five stages missing wall time, five missing metrics.
        assert_eq!(errs.len(), 10);
        assert!(errs.iter().any(|e| e.contains("'churn'")));
        assert!(!errs.iter().any(|e| e.contains("'topology'")));
    }

    #[test]
    fn report_roundtrips_and_renders() {
        let r = full_registry();
        let rep = RunReport::assemble("round", &r.snapshot(), &[]);
        let json = serde_json::to_string_pretty(&rep).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        let text = rep.render();
        assert!(text.contains("stage wall time"));
        assert!(text.contains("topology"));
    }

    #[test]
    fn normalized_strips_wall_clock_and_recover_stage() {
        let r = full_registry();
        r.incr(Key::stage("recover", "saves"), 2);
        r.incr(Key::stage("parallel", "regions"), 9);
        r.gauge(Key::stage("parallel", "jobs"), 4.0);
        r.observe(Key::stage("parallel", "shard_busy_ms"), 12.0);
        r.gauge(Key::stage("churn", "replay_rate"), 1234.5);
        r.gauge(Key::stage("topology", "ases"), 500.0);
        let rep = RunReport::assemble("x", &r.snapshot(), &[]);
        let norm = rep.normalized();
        assert!(norm.stages.iter().all(|s| s.wall_ms_total == 0.0
            && s.wall_ms_mean == 0.0
            && s.wall_ms_p95 == 0.0
            && s.wall_ms_max == 0.0));
        // Call counts survive; wall histograms, recover metrics, and
        // execution-engine (parallel) metrics go — a serial run and a
        // sharded run normalize to the same report.
        assert!(norm.stages.iter().all(|s| s.calls > 0));
        assert!(norm.metrics.histograms.is_empty());
        assert!(!norm.metrics.counters.iter().any(|c| c.stage == "recover"));
        assert!(!norm.metrics.counters.iter().any(|c| c.stage == "parallel"));
        assert!(!norm.metrics.gauges.iter().any(|g| g.stage == "parallel"));
        assert!(!norm.metrics.gauges.iter().any(|g| g.name == "replay_rate"));
        assert!(norm.metrics.gauges.iter().any(|g| g.name == "ases"));
    }

    #[test]
    fn deterministic_deltas_ignore_wall_clock_but_catch_counters() {
        // Two runs differing only in wall time and recover activity
        // are deterministically equal.
        let r1 = full_registry();
        r1.gauge(Key::stage("churn", "replay_rate"), 100.0);
        let a = RunReport::assemble("full", &r1.snapshot(), &[]);
        let r2 = full_registry();
        r2.observe(Key::stage("churn", crate::WALL_MS), 900.0);
        r2.incr(Key::stage("recover", "saves"), 3);
        r2.incr(Key::stage("recover", "resumes"), 1);
        r2.gauge(Key::stage("churn", "replay_rate"), 6400.0);
        let b = RunReport::assemble("resumed", &r2.snapshot(), &[]);
        assert_eq!(a.deterministic_deltas(&b), Vec::<String>::new());

        // A real pipeline-counter divergence is caught.
        r2.incr(Key::stage("collector", "records"), 1);
        let b = RunReport::assemble("diverged", &r2.snapshot(), &[]);
        let deltas = a.deterministic_deltas(&b);
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].contains("collector.records"));

        // So is an alarm-timeline divergence.
        let ev = Event::new(Level::Warn, "monitor", "alarm", "x")
            .with("at_s", 1.0)
            .with("prefix", "10.0.0.0/8")
            .with("kind", "origin-change");
        let c = RunReport::assemble("alarmed", &r1.snapshot(), &[ev]);
        assert!(a
            .deterministic_deltas(&c)
            .iter()
            .any(|d| d.contains("alarms")));
    }

    fn supervised_registry() -> Registry {
        let r = Registry::new();
        r.incr(Key::stage("supervisor", "cells"), 8);
        r.incr(Key::stage("supervisor", "completed"), 7);
        r.incr(Key::stage("supervisor", "quarantined"), 1);
        r.incr(Key::stage("supervisor", "restarts"), 5);
        r.incr(Key::stage("supervisor", "watchdog_trips"), 2);
        r.incr(Key::stage("supervisor", "panics"), 3);
        r.incr(Key::stage("supervisor", "stalls"), 2);
        r.incr(Key::stage("supervisor", "shed"), 1);
        r.gauge(Key::stage("supervisor", "degraded"), 2.0);
        r
    }

    #[test]
    fn supervisor_section_assembles_validates_and_renders() {
        let rep = RunReport::assemble("fleet", &supervised_registry().snapshot(), &[]);
        let sup = rep.supervisor.as_ref().expect("supervisor metrics present");
        assert_eq!(sup.cells, 8);
        assert_eq!(sup.completed, 7);
        assert_eq!(sup.quarantined, 1);
        assert_eq!(sup.restarts, 5);
        assert_eq!(sup.degraded, 2);
        // Fleet reports skip the six-stage rule but check consistency.
        assert!(rep.validate().is_ok());
        assert!(rep.render().contains("supervisor: 8 cells"));
        // Inconsistent accounting fails validation.
        let mut bad = rep.clone();
        bad.supervisor.as_mut().unwrap().completed = 3;
        let errs = bad.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= cells")));
        // Infrastructure failures count as quarantine.
        let r = supervised_registry();
        r.incr(Key::stage("supervisor", "cells"), 1);
        r.incr(Key::stage("supervisor", "failed"), 1);
        let rep = RunReport::assemble("fleet2", &r.snapshot(), &[]);
        assert_eq!(rep.supervisor.as_ref().unwrap().quarantined, 2);
        assert!(rep.validate().is_ok());
    }

    #[test]
    fn supervisor_section_is_optional_and_normalized_away() {
        // Batch reports (no supervisor metrics) have no section, and
        // pre-section JSON still deserializes.
        let batch = RunReport::assemble("batch", &full_registry().snapshot(), &[]);
        assert!(batch.supervisor.is_none());
        let json = serde_json::to_string(&batch).unwrap();
        assert!(!json.contains("supervisor"));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
        // normalized() strips the section and the stage metrics, so a
        // supervised run --checks clean against its batch twin.
        let r = supervised_registry();
        for stage in REQUIRED_STAGES {
            r.incr(
                Key {
                    stage,
                    name: "calls",
                    session: None,
                },
                1,
            );
            r.observe(Key::stage(stage, crate::WALL_MS), 5.0);
        }
        let fleet = RunReport::assemble("fleet", &r.snapshot(), &[]);
        let norm = fleet.normalized();
        assert!(norm.supervisor.is_none());
        assert!(!norm.metrics.counters.iter().any(|c| c.stage == "supervisor"));
        assert!(!norm.metrics.gauges.iter().any(|g| g.stage == "supervisor"));
        assert_eq!(batch.deterministic_deltas(&fleet), Vec::<String>::new());
    }

    fn sample_profile() -> crate::prof::Profile {
        crate::prof::Profile {
            sample_every: 1,
            dropped: 0,
            entries: vec![crate::prof::ProfileEntry {
                path: "churn.replay;churn.apply".to_string(),
                stage: "churn".to_string(),
                name: "apply".to_string(),
                count: 10,
                self_ns: 5_000_000,
                total_ns: 9_000_000,
                self_allocs: 0,
                total_allocs: 0,
                min_ns: 100,
                max_ns: 2_000_000,
                buckets: vec![0; crate::span::SPAN_LATENCY_BUCKETS],
            }],
        }
    }

    #[test]
    fn profile_section_is_optional_validated_and_normalized_away() {
        let batch = RunReport::assemble("batch", &full_registry().snapshot(), &[]);
        assert!(batch.profile.is_none());
        let profiled = batch.clone().with_profile(&sample_profile());
        let section = profiled.profile.as_ref().expect("profile attached");
        assert_eq!(section.spans.len(), 1);
        assert!((section.spans[0].self_us - 5_000.0).abs() < 1e-9);
        assert!(profiled.validate().is_ok());
        // Renders a span table and survives a JSON round trip.
        assert!(profiled.render().contains("span profile: 1 paths"));
        let json = serde_json::to_string(&profiled).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profiled);
        // Old-schema files (no profile key) still parse, and a
        // profiled report normalizes to its unprofiled twin — the
        // `report --check` tolerance the satellite asks for.
        let old_json = serde_json::to_string(&batch).unwrap();
        assert!(!old_json.contains("\"profile\""));
        let old: RunReport = serde_json::from_str(&old_json).unwrap();
        assert!(old.profile.is_none());
        assert_eq!(profiled.normalized().profile, None);
        assert_eq!(old.deterministic_deltas(&profiled), Vec::<String>::new());
        // An empty capture attaches nothing.
        assert!(batch
            .clone()
            .with_profile(&crate::prof::Profile::default())
            .profile
            .is_none());
        // Published `_span_us` histograms normalize away with the
        // section.
        let r = full_registry();
        sample_profile().publish(&r);
        let rep = RunReport::assemble("spanhist", &r.snapshot(), &[]);
        assert!(rep
            .metrics
            .histograms
            .iter()
            .any(|h| h.name.ends_with("_span_us")));
        assert!(!rep
            .normalized()
            .metrics
            .histograms
            .iter()
            .any(|h| h.name.ends_with("_span_us")));
        // Degenerate sections fail validation.
        let mut bad = profiled.clone();
        bad.profile.as_mut().unwrap().spans[0].count = 0;
        assert!(bad
            .validate()
            .unwrap_err()
            .iter()
            .any(|e| e.contains("zero activations")));
        let mut bad = profiled;
        bad.profile.as_mut().unwrap().spans[0].self_us = 1e12;
        assert!(bad
            .validate()
            .unwrap_err()
            .iter()
            .any(|e| e.contains("self time exceeds total")));
    }

    #[test]
    fn diff_surfaces_counter_and_time_changes() {
        let a = RunReport::assemble("a", &full_registry().snapshot(), &[]);
        let r2 = full_registry();
        r2.incr(Key::stage("collector", "reconnects"), 3);
        r2.observe(Key::stage("churn", crate::WALL_MS), 100.0);
        let b = RunReport::assemble("b", &r2.snapshot(), &[]);
        let d = a.diff(&b);
        assert!(d.contains("collector.reconnects: 0 -> 3 (+3)"));
        assert!(d.contains("churn"));
        assert!(d.contains("alarms: 0 -> 0"));
    }
}
