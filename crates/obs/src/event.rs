//! Events: the tracing vocabulary.
//!
//! An [`Event`] is one timestamped-by-sequence observation emitted by an
//! instrumented pipeline stage: a severity [`Level`], the stage it came
//! from, a human-readable message, and structured [`FieldValue`] fields
//! carrying the machine-readable payload (simulation times, prefixes,
//! counts). Subscribers decide what to do with events — drop them,
//! buffer them, print them, or append them to a JSONL stream.

use serde::{Serialize, Value};
use std::fmt;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained diagnostics (per-intensity sweeps, per-stage chatter).
    Debug,
    /// Run progress and results.
    Info,
    /// Degraded-but-continuing conditions (stale feeds, lossy sessions).
    Warn,
    /// Failures worth surfacing even in quiet runs.
    Error,
}

impl Level {
    /// The canonical lowercase name (`"debug"`, `"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name, case-insensitively (`"warn"`, `"WARN"`,
    /// and the common alias `"warning"` all work). `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured field value attached to an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, session ids).
    U64(u64),
    /// A signed integer (lags, deltas).
    I64(i64),
    /// A float (times, rates, scores).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string (prefixes, alarm kinds, labels).
    Str(String),
}

impl FieldValue {
    /// The value as f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, when textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One observation from an instrumented stage.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// The pipeline stage that emitted the event (one of the span
    /// taxonomy names, or a tool-specific stage like `"repro"`).
    pub stage: &'static str,
    /// Short event name, stable across runs (`"alarm"`, `"stage-done"`).
    pub name: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Structured payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Start building an event.
    pub fn new(
        level: Level,
        stage: &'static str,
        name: &'static str,
        message: impl Into<String>,
    ) -> Event {
        Event {
            level,
            stage,
            name,
            message: message.into(),
            fields: Vec::new(),
        }
    }

    /// Attach a structured field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key (first match).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One-line rendering: `stage/name: message key=value ...`.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = format!("[{}] {}: {}", self.stage, self.name, self.message);
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let fields = Value::Map(
            self.fields
                .iter()
                .map(|(k, v)| {
                    let val = match v {
                        FieldValue::U64(n) => Value::U64(*n),
                        FieldValue::I64(n) => Value::I64(*n),
                        FieldValue::F64(x) if x.is_finite() => Value::F64(*x),
                        // Non-finite floats are not valid JSON; stringify.
                        FieldValue::F64(x) => Value::Str(x.to_string()),
                        FieldValue::Bool(b) => Value::Bool(*b),
                        FieldValue::Str(s) => Value::Str(s.clone()),
                    };
                    (Value::Str((*k).to_string()), val)
                })
                .collect(),
        );
        Value::Map(vec![
            (
                Value::Str("level".into()),
                Value::Str(self.level.as_str().into()),
            ),
            (Value::Str("stage".into()), Value::Str(self.stage.into())),
            (Value::Str("name".into()), Value::Str(self.name.into())),
            (
                Value::Str("message".into()),
                Value::Str(self.message.clone()),
            ),
            (Value::Str("fields".into()), fields),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn builder_and_lookup() {
        let e = Event::new(Level::Info, "monitor", "alarm", "origin change")
            .with("prefix", "10.0.0.0/8")
            .with("at_s", 12.5)
            .with("count", 3usize);
        assert_eq!(e.field("prefix").unwrap().as_str(), Some("10.0.0.0/8"));
        assert_eq!(e.field("at_s").unwrap().as_f64(), Some(12.5));
        assert_eq!(e.field("count").unwrap().as_f64(), Some(3.0));
        assert!(e.field("missing").is_none());
        let line = e.render();
        assert!(line.contains("[monitor] alarm"));
        assert!(line.contains("prefix=10.0.0.0/8"));
    }

    #[test]
    fn serializes_to_json() {
        let e = Event::new(Level::Warn, "collector", "stale", "feed gap")
            .with("session", 4u32)
            .with("nan", f64::NAN);
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"level\":\"warn\""));
        assert!(json.contains("\"session\":4"));
        // Non-finite floats degrade to strings rather than breaking JSON.
        assert!(json.contains("\"nan\":\"NaN\""));
    }
}
