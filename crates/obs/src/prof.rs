//! The span profiler's control plane: global on/off gate, sampling,
//! the alloc probe, tree registration, and aggregation.
//!
//! The hot-path contract: when the profiler is **off**,
//! [`span`] costs one relaxed atomic load and returns an inert guard —
//! no thread-local access, no clock read, no allocation. When **on**,
//! each span costs two monotonic clock reads, two alloc-probe reads,
//! and one short mutex hold on a preallocated [`SpanTree`]; the only
//! allocations happen on a site's *first* visit (node insert) and at
//! [`capture`] time, never per event. That is what keeps profiled
//! serial replay within 5% of the 89 allocs/event budget (enforced by
//! the `alloc_budget` tripwire test).
//!
//! # Alloc attribution
//!
//! The profiler cannot see the global allocator by itself; a binary
//! that owns a counting `#[global_allocator]` donates a probe via
//! [`set_alloc_probe`] (the `repro` binary does). Without a probe all
//! alloc deltas read 0 and only wall-time attribution is collected.
//!
//! ```
//! use quicksand_obs as obs;
//!
//! obs::prof::set_enabled(true);
//! {
//!     let _outer = obs::prof::span("churn", "replay");
//!     let _inner = obs::prof::span("churn", "apply");
//! }
//! obs::prof::set_enabled(false);
//! let profile = obs::prof::capture();
//! assert!(profile
//!     .entries
//!     .iter()
//!     .any(|e| e.path == "churn.replay;churn.apply"));
//! obs::prof::reset();
//! ```

use crate::metrics::{intern, Key, Registry, LOG2_US_BOUNDS};
use crate::span::{self, SpanGuard, SpanNodeStats, SpanTree, SPAN_LATENCY_BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub use crate::span::with_tree;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();
static TREES: Mutex<Vec<Arc<SpanTree>>> = Mutex::new(Vec::new());

/// Turn the profiler on or off process-wide. Off is the default and
/// costs one atomic load per [`span`] call.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is the profiler currently recording?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record only every `every`-th top-level span activation (nested
/// spans follow their root's fate, so trees stay internally
/// consistent). `0` is treated as `1` (record everything — the
/// default).
pub fn set_sample_every(every: u64) {
    SAMPLE_EVERY.store(every.max(1), Ordering::Relaxed);
}

pub(crate) fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Install the allocation-count probe (a monotonic count of heap
/// allocations, typically from a counting `#[global_allocator]`).
/// First caller wins; later calls are ignored so libraries cannot
/// steal the binary's probe.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Is an alloc probe installed? (Alloc deltas are all-zero without
/// one.)
pub fn has_alloc_probe() -> bool {
    ALLOC_PROBE.get().is_some()
}

pub(crate) fn alloc_count() -> u64 {
    ALLOC_PROBE.get().map_or(0, |probe| probe())
}

/// Read the probe's current allocation count (0 without a probe).
/// The count is process-wide and monotonic; deltas taken around a
/// single-threaded section attribute exactly, deltas around concurrent
/// sections include every thread's allocations.
pub fn probe_count() -> u64 {
    alloc_count()
}

/// Make `tree` visible to [`capture`]. Threads' implicit default
/// trees self-register; explicitly created trees (worker-pool slots)
/// must be registered once by their owner. Registering the same tree
/// twice is a no-op.
pub fn register_tree(tree: &Arc<SpanTree>) {
    let mut trees = TREES.lock().unwrap_or_else(|e| e.into_inner());
    if !trees.iter().any(|t| Arc::ptr_eq(t, tree)) {
        trees.push(tree.clone());
    }
}

fn registered_trees() -> Vec<Arc<SpanTree>> {
    TREES.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Open a span at `(stage, name)` nested under the innermost open span
/// on this thread. Returns an inert guard when the profiler is off.
///
/// Bind the guard to a named local (`let _span = ...`) — binding to
/// `_` drops it immediately and records a zero-length span.
pub fn span(stage: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    span::enter(stage, name)
}

/// Clear every registered tree's recorded data (the trees stay
/// registered and keep their allocations). Call between bench runs so
/// profiles do not bleed across measurements.
pub fn reset() {
    for tree in registered_trees() {
        tree.reset();
    }
}

/// One aggregated call path in a [`Profile`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Semicolon-joined `stage.name` frames, root first (the
    /// collapsed-stack path).
    pub path: String,
    /// Leaf frame's stage.
    pub stage: String,
    /// Leaf frame's span name.
    pub name: String,
    /// Completed activations.
    pub count: u64,
    /// Wall time excluding child spans, nanoseconds.
    pub self_ns: u64,
    /// Wall time including child spans, nanoseconds.
    pub total_ns: u64,
    /// Allocations excluding child spans (0 without an alloc probe).
    pub self_allocs: u64,
    /// Allocations including child spans.
    pub total_allocs: u64,
    /// Fastest activation, nanoseconds.
    pub min_ns: u64,
    /// Slowest activation, nanoseconds.
    pub max_ns: u64,
    /// Log₂ latency buckets over total span µs (see
    /// [`LOG2_US_BOUNDS`] plus one overflow bucket).
    pub buckets: Vec<u64>,
}

/// An aggregated snapshot of every registered span tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Sampling in effect when captured (`1` = every activation).
    pub sample_every: u64,
    /// Spans dropped to depth/node-table limits across all trees.
    pub dropped: u64,
    /// Aggregated call paths, sorted by path.
    pub entries: Vec<ProfileEntry>,
}

impl Profile {
    /// True when nothing was recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render as collapsed-stack text (`path weight` per line, weight
    /// = self time in µs), the input format of flamegraph tooling.
    /// Paths already use `;` as the frame separator.
    pub fn collapsed(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} {}", e.path, e.self_ns / 1_000);
        }
        out
    }

    /// Fold every entry's latency buckets into `registry` as
    /// per-`(stage, name)` histograms named `<name>_span_us` over
    /// [`LOG2_US_BOUNDS`]. Entries sharing a leaf site but reached by
    /// different paths merge into one histogram.
    pub fn publish(&self, registry: &Registry) {
        for e in &self.entries {
            if e.count == 0 {
                continue;
            }
            let key = Key::stage(intern(&e.stage), intern(&format!("{}_span_us", e.name)));
            registry.merge_histogram(
                key,
                &LOG2_US_BOUNDS,
                &e.buckets,
                e.count,
                e.total_ns as f64 / 1_000.0,
                e.min_ns as f64 / 1_000.0,
                e.max_ns as f64 / 1_000.0,
            );
        }
    }
}

/// Aggregate every registered tree into a [`Profile`]. Nodes with the
/// same call path (across threads/worker slots) are merged. Cold path:
/// allocates freely.
pub fn capture() -> Profile {
    let mut merged: BTreeMap<String, ProfileEntry> = BTreeMap::new();
    let mut dropped = 0u64;
    for tree in registered_trees() {
        dropped += tree.dropped();
        let nodes = tree.nodes();
        let paths: Vec<String> = nodes
            .iter()
            .map(|n| {
                let frame = format!("{}.{}", n.stage, n.name);
                match n.parent {
                    Some(p) => format!("{};{}", path_of(&nodes, p), frame),
                    None => frame,
                }
            })
            .collect();
        for (node, path) in nodes.iter().zip(&paths) {
            if node.count == 0 {
                continue;
            }
            merge_node(&mut merged, path, node);
        }
    }
    Profile {
        sample_every: sample_every(),
        dropped,
        entries: merged.into_values().collect(),
    }
}

fn path_of(nodes: &[SpanNodeStats], idx: u32) -> String {
    let n = &nodes[idx as usize];
    let frame = format!("{}.{}", n.stage, n.name);
    match n.parent {
        Some(p) => format!("{};{}", path_of(nodes, p), frame),
        None => frame,
    }
}

fn merge_node(merged: &mut BTreeMap<String, ProfileEntry>, path: &str, node: &SpanNodeStats) {
    let entry = merged.entry(path.to_string()).or_insert_with(|| ProfileEntry {
        path: path.to_string(),
        stage: node.stage.to_string(),
        name: node.name.to_string(),
        count: 0,
        self_ns: 0,
        total_ns: 0,
        self_allocs: 0,
        total_allocs: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        buckets: vec![0; SPAN_LATENCY_BUCKETS],
    });
    entry.count += node.count;
    entry.self_ns += node.self_ns;
    entry.total_ns += node.total_ns;
    entry.self_allocs += node.self_allocs;
    entry.total_allocs += node.total_allocs;
    entry.min_ns = entry.min_ns.min(node.min_ns);
    entry.max_ns = entry.max_ns.max(node.max_ns);
    for (slot, b) in entry.buckets.iter_mut().zip(node.buckets.iter()) {
        *slot += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    // The profiler is process-global state; tests that flip the gate
    // share one lock so `cargo test`'s parallelism cannot interleave
    // them.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
        let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_sample_every(1);
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _lock = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _a = span("churn", "replay");
            let _b = span("churn", "apply");
        }
        assert!(capture().is_empty());
    }

    #[test]
    fn nested_spans_build_paths_with_self_total_split() {
        let profile = with_profiler(|| {
            let tree = Arc::new(SpanTree::new());
            register_tree(&tree);
            with_tree(&tree, || {
                let _root = span("churn", "replay");
                for _ in 0..3 {
                    let _child = span("collector", "observe");
                    std::hint::black_box(0u64);
                }
            });
            let profile = capture();
            reset();
            profile
        });
        let root = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay")
            .expect("root path present");
        let child = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay;collector.observe")
            .expect("child path present");
        assert_eq!(root.count, 1);
        assert_eq!(child.count, 3);
        // Self never exceeds total, and the root's total covers its
        // children's total.
        assert!(root.self_ns <= root.total_ns);
        assert!(child.total_ns <= root.total_ns);
        // Collapsed output carries both paths with µs weights.
        let collapsed = profile.collapsed();
        assert!(collapsed.contains("churn.replay "));
        assert!(collapsed.contains("churn.replay;collector.observe "));
    }

    #[test]
    fn sampling_skips_whole_activations() {
        let profile = with_profiler(|| {
            let tree = Arc::new(SpanTree::new());
            register_tree(&tree);
            set_sample_every(4);
            with_tree(&tree, || {
                for _ in 0..8 {
                    let _root = span("churn", "replay");
                    let _child = span("churn", "apply");
                }
            });
            set_sample_every(1);
            let profile = capture();
            reset();
            profile
        });
        let root = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay")
            .expect("root recorded");
        let child = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay;churn.apply")
            .expect("child recorded");
        // Exactly every 4th activation recorded, children in lockstep.
        assert_eq!(root.count, 2);
        assert_eq!(child.count, 2);
    }

    #[test]
    fn alloc_probe_attributes_deltas_to_the_allocating_span() {
        static FAKE_ALLOCS: TestCounter = TestCounter::new(0);
        fn probe() -> u64 {
            FAKE_ALLOCS.load(Ordering::Relaxed)
        }
        // First-wins, and no other test in this binary installs a
        // probe, so ours is the process probe from here on.
        set_alloc_probe(probe);
        assert!(has_alloc_probe());
        let profile = with_profiler(|| {
            let tree = Arc::new(SpanTree::new());
            register_tree(&tree);
            with_tree(&tree, || {
                let _root = span("churn", "replay");
                {
                    let _child = span("churn", "apply");
                    FAKE_ALLOCS.fetch_add(7, Ordering::Relaxed);
                }
                FAKE_ALLOCS.fetch_add(2, Ordering::Relaxed);
            });
            let profile = capture();
            reset();
            profile
        });
        let root = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay")
            .unwrap();
        let child = profile
            .entries
            .iter()
            .find(|e| e.path == "churn.replay;churn.apply")
            .unwrap();
        assert_eq!(child.self_allocs, 7);
        assert_eq!(child.total_allocs, 7);
        assert_eq!(root.self_allocs, 2);
        assert_eq!(root.total_allocs, 9);
    }

    #[test]
    fn publish_lands_log2_histograms_in_the_registry() {
        let profile = with_profiler(|| {
            let tree = Arc::new(SpanTree::new());
            register_tree(&tree);
            with_tree(&tree, || {
                let _a = span("routing", "reconverge");
            });
            let profile = capture();
            reset();
            profile
        });
        let reg = Registry::new();
        profile.publish(&reg);
        let snap = reg.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.stage == "routing" && h.name == "reconverge_span_us")
            .expect("span histogram published");
        assert_eq!(hist.stats.count, 1);
    }
}
