//! Hierarchical span trees: the data structure behind the profiler.
//!
//! A [`SpanTree`] is a call-tree of instrumentation sites. Each node is
//! one `(parent, stage, name)` site carrying monotonic self/total wall
//! time, alloc-delta attribution, and a log₂-bucketed latency
//! histogram over the span's total duration. Entering a span pushes a
//! frame onto a preallocated thread-local stack; leaving it (guard
//! drop, panic-safe) folds the measurements into the tree under a
//! short uncontended mutex hold. The per-event path never touches the
//! heap after a site's first visit — the zero-allocation replay budget
//! (DESIGN.md §11) survives profiling.
//!
//! Trees are registered with [`crate::prof`], which owns the global
//! on/off gate, sampling, the alloc probe, and aggregation into a
//! [`crate::prof::Profile`].

use crate::metrics::LOG2_US_BOUNDS;
use crate::prof;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum span nesting depth per thread. Deeper spans are counted as
/// dropped rather than recorded (the replay hot path nests 4–5 deep).
pub const MAX_SPAN_DEPTH: usize = 16;

/// Maximum distinct `(parent, stage, name)` sites per tree. New sites
/// past the cap are counted as dropped (a runaway name cardinality
/// must not grow memory without bound in a resident fleet).
pub const MAX_SPAN_NODES: usize = 512;

/// Number of latency buckets per node: one per [`LOG2_US_BOUNDS`]
/// bound plus the overflow bucket.
pub const SPAN_LATENCY_BUCKETS: usize = LOG2_US_BOUNDS.len() + 1;

const NO_NODE: u32 = u32::MAX;

struct Node {
    parent: u32,
    stage: &'static str,
    name: &'static str,
    /// Sibling chain: nodes sharing `parent` are linked so lookup
    /// scans only the (few) children of the current parent.
    next_sibling: u32,
    first_child: u32,
    count: u64,
    self_ns: u64,
    total_ns: u64,
    self_allocs: u64,
    total_allocs: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; SPAN_LATENCY_BUCKETS],
}

impl Node {
    fn new(parent: u32, stage: &'static str, name: &'static str) -> Node {
        Node {
            parent,
            stage,
            name,
            next_sibling: NO_NODE,
            first_child: NO_NODE,
            count: 0,
            self_ns: 0,
            total_ns: 0,
            self_allocs: 0,
            total_allocs: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; SPAN_LATENCY_BUCKETS],
        }
    }
}

struct TreeData {
    nodes: Vec<Node>,
    /// Root-level sibling chain head (nodes with no parent).
    first_root: u32,
    dropped: u64,
}

/// A read-only snapshot of one [`SpanTree`] node.
#[derive(Clone, Debug)]
pub struct SpanNodeStats {
    /// Index of the parent node within the same snapshot (`None` for
    /// root spans).
    pub parent: Option<u32>,
    /// Owning pipeline stage.
    pub stage: &'static str,
    /// Span name within the stage.
    pub name: &'static str,
    /// Completed activations.
    pub count: u64,
    /// Wall time excluding child spans, nanoseconds.
    pub self_ns: u64,
    /// Wall time including child spans, nanoseconds.
    pub total_ns: u64,
    /// Allocations attributed to this span excluding children (only
    /// nonzero when an alloc probe is installed).
    pub self_allocs: u64,
    /// Allocations including children.
    pub total_allocs: u64,
    /// Fastest activation, nanoseconds (0 when never activated).
    pub min_ns: u64,
    /// Slowest activation, nanoseconds.
    pub max_ns: u64,
    /// Log₂ latency buckets over total span microseconds, aligned with
    /// [`LOG2_US_BOUNDS`] plus one overflow bucket.
    pub buckets: [u64; SPAN_LATENCY_BUCKETS],
}

/// One thread's (or worker slot's) span call-tree.
///
/// Cheap to share (`Arc`), internally mutexed; the lock is held for a
/// handful of integer updates per span exit. Register with
/// [`prof::register_tree`] so [`prof::capture`] can see it.
pub struct SpanTree {
    inner: Mutex<TreeData>,
}

impl Default for SpanTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTree {
    /// A fresh, empty tree.
    pub fn new() -> SpanTree {
        SpanTree {
            inner: Mutex::new(TreeData {
                nodes: Vec::with_capacity(32),
                first_root: NO_NODE,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TreeData> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Find the child of `parent` matching `(stage, name)`, inserting
    /// it on first visit. `None` when the node table is full (the
    /// caller counts the span as dropped).
    fn find_or_insert(&self, parent: u32, stage: &'static str, name: &'static str) -> Option<u32> {
        let mut data = self.lock();
        let head = if parent == NO_NODE {
            data.first_root
        } else {
            // Stale parent index after a mid-activation reset: treat
            // the span as unrecordable rather than indexing blind.
            match data.nodes.get(parent as usize) {
                Some(n) => n.first_child,
                None => {
                    data.dropped += 1;
                    return None;
                }
            }
        };
        let mut at = head;
        while at != NO_NODE {
            let n = &data.nodes[at as usize];
            // Site identity: pointer equality is the common fast case
            // for literals; content equality covers interned strings.
            if (std::ptr::eq(n.stage, stage) || n.stage == stage)
                && (std::ptr::eq(n.name, name) || n.name == name)
            {
                return Some(at);
            }
            at = n.next_sibling;
        }
        if data.nodes.len() >= MAX_SPAN_NODES {
            data.dropped += 1;
            return None;
        }
        let idx = data.nodes.len() as u32;
        let mut node = Node::new(parent, stage, name);
        node.next_sibling = head;
        data.nodes.push(node);
        if parent == NO_NODE {
            data.first_root = idx;
        } else {
            data.nodes[parent as usize].first_child = idx;
        }
        Some(idx)
    }

    fn record(&self, node: u32, total_ns: u64, self_ns: u64, allocs: u64, self_allocs: u64) {
        let mut data = self.lock();
        // A concurrent `reset` (only legal between runs, but cheap to
        // tolerate) may have invalidated the index: drop the sample.
        let Some(n) = data.nodes.get_mut(node as usize) else {
            return;
        };
        n.count += 1;
        n.total_ns += total_ns;
        n.self_ns += self_ns;
        n.total_allocs += allocs;
        n.self_allocs += self_allocs;
        n.min_ns = n.min_ns.min(total_ns);
        n.max_ns = n.max_ns.max(total_ns);
        let us = total_ns / 1_000;
        // log₂ bucket index: bucket i holds totals ≤ 2^i µs, i.e. the
        // smallest i with us ≤ 2^i (= ceil(log₂ us)), clamped into the
        // overflow bucket.
        let idx = if us <= 1 {
            0
        } else {
            (64 - ((us - 1).leading_zeros() as usize)).min(SPAN_LATENCY_BUCKETS - 1)
        };
        n.buckets[idx] += 1;
    }

    fn note_dropped(&self) {
        self.lock().dropped += 1;
    }

    /// Snapshot every node (parent indices refer into the returned
    /// vector, which preserves insertion order).
    pub fn nodes(&self) -> Vec<SpanNodeStats> {
        self.lock()
            .nodes
            .iter()
            .map(|n| SpanNodeStats {
                parent: (n.parent != NO_NODE).then_some(n.parent),
                stage: n.stage,
                name: n.name,
                count: n.count,
                self_ns: n.self_ns,
                total_ns: n.total_ns,
                self_allocs: n.self_allocs,
                total_allocs: n.total_allocs,
                min_ns: if n.count == 0 { 0 } else { n.min_ns },
                max_ns: n.max_ns,
                buckets: n.buckets,
            })
            .collect()
    }

    /// Spans not recorded because of depth or node-table limits.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// True when no span has ever been recorded into this tree.
    pub fn is_empty(&self) -> bool {
        let data = self.lock();
        data.nodes.iter().all(|n| n.count == 0) && data.dropped == 0
    }

    /// Clear all recorded data, keeping the allocation.
    pub fn reset(&self) {
        let mut data = self.lock();
        data.nodes.clear();
        data.first_root = NO_NODE;
        data.dropped = 0;
    }
}

struct Frame {
    tree: Arc<SpanTree>,
    node: u32,
    start: Instant,
    allocs0: u64,
    child_ns: u64,
    child_allocs: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static TREE: RefCell<Option<Arc<SpanTree>>> = const { RefCell::new(None) };
    /// Non-zero while an unsampled top-level activation is in flight:
    /// nested spans must stay inert without consulting the stack.
    static SKIP: Cell<u32> = const { Cell::new(0) };
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

enum GuardKind {
    /// Profiler off (or construction raced a disable): nothing to undo.
    Disabled,
    /// Depth/node-table overflow: already counted as dropped.
    Inert,
    /// Unsampled activation: decrement the skip depth on drop.
    Skipped,
    /// A live frame was pushed: pop and record on drop.
    Recorded,
}

/// RAII guard returned by [`prof::span`]; records the span when
/// dropped. Must stay on the thread that opened it (it is `!Send`).
pub struct SpanGuard {
    kind: GuardKind,
    /// Span guards close in LIFO order on their opening thread.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard {
            kind: GuardKind::Disabled,
            _not_send: PhantomData,
        }
    }
}

fn current_tree() -> Arc<SpanTree> {
    TREE.with(|t| {
        let mut slot = t.borrow_mut();
        match &*slot {
            Some(tree) => tree.clone(),
            None => {
                let tree = Arc::new(SpanTree::new());
                prof::register_tree(&tree);
                *slot = Some(tree.clone());
                tree
            }
        }
    })
}

/// Run `f` with `tree` as this thread's span destination (restored on
/// exit, including on panic). Worker pools keep one pre-registered
/// tree per slot and reuse it across scoped-thread regions, so
/// short-lived threads never grow the global tree list.
pub fn with_tree<R>(tree: &Arc<SpanTree>, f: impl FnOnce() -> R) -> R {
    let prev = TREE.with(|t| t.borrow_mut().replace(tree.clone()));
    struct Restore(Option<Arc<SpanTree>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            TREE.with(|t| *t.borrow_mut() = prev);
        }
    }
    let _guard = Restore(prev);
    f()
}

pub(crate) fn enter(stage: &'static str, name: &'static str) -> SpanGuard {
    if SKIP.with(|s| {
        let depth = s.get();
        if depth > 0 {
            s.set(depth + 1);
            true
        } else {
            false
        }
    }) {
        return SpanGuard {
            kind: GuardKind::Skipped,
            _not_send: PhantomData,
        };
    }
    let depth = STACK.with(|s| s.borrow().len());
    if depth == 0 {
        let every = prof::sample_every();
        if every > 1 {
            let sampled = SAMPLE_TICK.with(|t| {
                let tick = t.get();
                t.set(tick.wrapping_add(1));
                tick % every == 0
            });
            if !sampled {
                SKIP.with(|s| s.set(1));
                return SpanGuard {
                    kind: GuardKind::Skipped,
                    _not_send: PhantomData,
                };
            }
        }
    }
    let tree = current_tree();
    if depth >= MAX_SPAN_DEPTH {
        tree.note_dropped();
        return SpanGuard {
            kind: GuardKind::Inert,
            _not_send: PhantomData,
        };
    }
    let parent = STACK.with(|s| {
        s.borrow()
            .last()
            .filter(|f| Arc::ptr_eq(&f.tree, &tree))
            .map_or(NO_NODE, |f| f.node)
    });
    let Some(node) = tree.find_or_insert(parent, stage, name) else {
        return SpanGuard {
            kind: GuardKind::Inert,
            _not_send: PhantomData,
        };
    };
    let allocs0 = prof::alloc_count();
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            tree,
            node,
            start: Instant::now(),
            allocs0,
            child_ns: 0,
            child_allocs: 0,
        })
    });
    SpanGuard {
        kind: GuardKind::Recorded,
        _not_send: PhantomData,
    }
}

fn exit() {
    let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
        return;
    };
    let total_ns = frame.start.elapsed().as_nanos() as u64;
    let allocs = prof::alloc_count().saturating_sub(frame.allocs0);
    let self_ns = total_ns.saturating_sub(frame.child_ns);
    let self_allocs = allocs.saturating_sub(frame.child_allocs);
    frame
        .tree
        .record(frame.node, total_ns, self_ns, allocs, self_allocs);
    STACK.with(|s| {
        if let Some(parent) = s.borrow_mut().last_mut() {
            parent.child_ns += total_ns;
            parent.child_allocs += allocs;
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self.kind {
            GuardKind::Disabled | GuardKind::Inert => {}
            GuardKind::Skipped => SKIP.with(|s| s.set(s.get().saturating_sub(1))),
            GuardKind::Recorded => exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_tree_record(tree: &SpanTree, path: &[(&'static str, &'static str)], total_ns: u64) {
        let mut parent = NO_NODE;
        for (stage, name) in path {
            parent = tree.find_or_insert(parent, stage, name).unwrap();
        }
        tree.record(parent, total_ns, total_ns, 0, 0);
    }

    #[test]
    fn sibling_chain_lookup_finds_existing_sites() {
        let tree = SpanTree::new();
        let a = tree.find_or_insert(NO_NODE, "churn", "replay").unwrap();
        let b = tree.find_or_insert(a, "churn", "apply").unwrap();
        let c = tree.find_or_insert(a, "collector", "observe").unwrap();
        assert_ne!(b, c);
        assert_eq!(tree.find_or_insert(NO_NODE, "churn", "replay"), Some(a));
        assert_eq!(tree.find_or_insert(a, "churn", "apply"), Some(b));
        assert_eq!(tree.find_or_insert(a, "collector", "observe"), Some(c));
        // Same (stage, name) under a different parent is a new node.
        let d = tree.find_or_insert(c, "churn", "apply").unwrap();
        assert_ne!(d, b);
    }

    #[test]
    fn node_table_cap_counts_dropped() {
        let tree = SpanTree::new();
        for i in 0..(MAX_SPAN_NODES + 5) {
            let name = crate::metrics::intern(&format!("site-{i}"));
            let _ = tree.find_or_insert(NO_NODE, "test", name);
        }
        assert_eq!(tree.lock().nodes.len(), MAX_SPAN_NODES);
        assert_eq!(tree.dropped(), 5);
    }

    #[test]
    fn log2_buckets_cover_the_range() {
        let tree = SpanTree::new();
        // 0 µs, 1 µs, 3 µs, ~1 ms, ~10 s (overflow).
        for ns in [500, 1_000, 3_000, 1_000_000, 10_000_000_000] {
            raw_tree_record(&tree, &[("churn", "apply")], ns);
        }
        let nodes = tree.nodes();
        assert_eq!(nodes.len(), 1);
        let n = &nodes[0];
        assert_eq!(n.count, 5);
        assert_eq!(n.buckets.iter().sum::<u64>(), 5);
        // ≤1 µs lands in bucket 0 (both 0.5 µs and exactly 1 µs);
        // 3 µs in bucket 2 (≤4 µs); 1 ms in bucket 10 (≤1024 µs);
        // 10 s lands in overflow.
        assert_eq!(n.buckets[0], 2);
        assert_eq!(n.buckets[2], 1);
        assert_eq!(n.buckets[10], 1);
        assert_eq!(n.buckets[SPAN_LATENCY_BUCKETS - 1], 1);
        assert_eq!(n.min_ns, 500);
        assert_eq!(n.max_ns, 10_000_000_000);
    }

    #[test]
    fn reset_clears_and_reuses() {
        let tree = SpanTree::new();
        raw_tree_record(&tree, &[("churn", "replay"), ("churn", "apply")], 100);
        assert!(!tree.is_empty());
        tree.reset();
        assert!(tree.is_empty());
        assert_eq!(tree.nodes().len(), 0);
    }
}
