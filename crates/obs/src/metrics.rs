//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by `(stage, name, session)`.
//!
//! The registry is the always-on half of the observability layer (the
//! subscriber is the pluggable half): instrumented code records into
//! the *current* registry — a thread-local override installed by
//! [`crate::with_metrics`], or the process-wide default — and a
//! [`Registry::snapshot`] at the end of a run yields a deterministic,
//! serializable [`Snapshot`] (BTreeMap-ordered, so identical runs
//! produce byte-identical snapshots).
//!
//! Histograms use fixed bucket bounds, so p50/p95/p99 are bucket-upper-
//! bound estimates (clamped to the exact observed min/max); `max` and
//! `sum`/`mean` are exact.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Intern a runtime string, yielding a `&'static str` for use in a
/// [`Key`]. Each distinct string is leaked exactly once and reused on
/// every later call — needed when metric names come back from a
/// serialized form (e.g. a checkpoint) rather than source literals.
pub fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A metric key: the stage that owns the metric, the metric name, and
/// an optional session dimension for per-feed breakdowns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Owning pipeline stage (see [`crate::report::REQUIRED_STAGES`]).
    pub stage: &'static str,
    /// Metric name within the stage.
    pub name: &'static str,
    /// Optional per-session dimension.
    pub session: Option<u32>,
}

impl Key {
    /// A stage-level key (no session dimension).
    pub fn stage(stage: &'static str, name: &'static str) -> Key {
        Key {
            stage,
            name,
            session: None,
        }
    }

    /// A session-keyed variant of the metric.
    pub fn session(stage: &'static str, name: &'static str, session: u32) -> Key {
        Key {
            stage,
            name,
            session: Some(session),
        }
    }
}

/// Default histogram bucket upper bounds: a 1–2–5 decade ladder from
/// 1 ms-scale to 1e6, suiting both millisecond wall times and counts.
pub const DEFAULT_BOUNDS: [f64; 28] = [
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6,
];

/// Bucket bounds for correlation-style scores in `[-1, 1]`.
pub const SCORE_BOUNDS: [f64; 12] = [
    -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0,
];

/// Log₂ bucket upper bounds in microseconds (1 µs … ~0.5 s) used by the
/// span profiler's latency histograms. The implicit overflow bucket
/// catches anything slower than half a second.
pub const LOG2_US_BOUNDS: [f64; 20] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0, 16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0,
];

/// A fixed-bucket histogram with exact count/sum/min/max.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Ascending bucket upper bounds; an implicit overflow bucket
    /// catches values above the last bound.
    bounds: Vec<f64>,
    /// Per-bucket counts, length `bounds.len() + 1`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be finite and strictly
    /// ascending).
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. NaN samples are ignored (a degenerate
    /// correlation or a zero-duration rate must not poison the run
    /// report).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The q-quantile (`0 ≤ q ≤ 1`) estimated from bucket bounds by
    /// nearest rank: the upper bound of the bucket containing the
    /// target rank, clamped to the exact observed `[min, max]`.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r with r ≥ q·count, at least 1.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let est = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Summarize into a serializable [`HistogramStats`].
    pub fn stats(&self) -> HistogramStats {
        let empty = self.count == 0;
        HistogramStats {
            count: self.count,
            sum: if empty { 0.0 } else { self.sum },
            mean: if empty { 0.0 } else { self.sum / self.count as f64 },
            min: self.min().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }

    /// Merge pre-aggregated bucket counts into this histogram. Used by
    /// the span profiler, which accumulates per-node log₂ buckets in
    /// thread-local scratch and folds them into the registry once at
    /// publish time. A `counts` slice whose length is not
    /// `bounds.len() + 1` of *this* histogram is ignored (defensive:
    /// never poison live metrics over a shape mismatch).
    pub fn merge_parts(&mut self, counts: &[u64], count: u64, sum: f64, min: f64, max: f64) {
        if counts.len() != self.counts.len() || count == 0 {
            return;
        }
        for (slot, &c) in self.counts.iter_mut().zip(counts) {
            *slot += c;
        }
        self.count += count;
        self.sum += sum;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }
}

/// Serializable summary of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Number of samples.
    pub count: u64,
    /// Exact sum.
    pub sum: f64,
    /// Exact mean (0 when empty).
    pub mean: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile (0 on reports written before the
    /// field existed; `#[serde(default)]` keeps old schemas parseable).
    #[serde(default)]
    pub p90: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A thread-safe metrics registry.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metrics must never take the pipeline down: recover the data
        // under a poisoned lock rather than propagating the panic.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `by` to the counter at `key`.
    pub fn incr(&self, key: Key, by: u64) {
        *self.lock().counters.entry(key).or_insert(0) += by;
    }

    /// Set the counter at `key` to an absolute value. Only for restore
    /// paths (checkpoint resume) — live instrumentation must use
    /// [`Registry::incr`] so concurrent increments are never lost.
    pub fn set_counter(&self, key: Key, value: u64) {
        self.lock().counters.insert(key, value);
    }

    /// Set the gauge at `key` to `value` (last write wins).
    pub fn gauge(&self, key: Key, value: f64) {
        self.lock().gauges.insert(key, value);
    }

    /// Record `value` into the histogram at `key`, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&self, key: Key, value: f64) {
        self.observe_bounded(key, value, &DEFAULT_BOUNDS);
    }

    /// Record `value` into the histogram at `key`, creating it with
    /// `bounds` on first use (later calls reuse the existing buckets).
    pub fn observe_bounded(&self, key: Key, value: f64, bounds: &[f64]) {
        self.lock()
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Merge pre-aggregated bucket counts into the histogram at `key`,
    /// creating it with `bounds` on first use. See
    /// [`Histogram::merge_parts`] for the mismatch semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn merge_histogram(
        &self,
        key: Key,
        bounds: &[f64],
        counts: &[u64],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) {
        self.lock()
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .merge_parts(counts, count, sum, min, max);
    }

    /// Render every metric in Prometheus text exposition format 0.0.4
    /// into `out`. Metric names are `quicksand_<stage>_<name>`
    /// (sanitized), counters get the `_total` suffix, histograms emit
    /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and a
    /// session-keyed metric gains a `session` label. `extra_labels`
    /// (e.g. `cell="3"`) are prepended to every series, letting one
    /// scrape page carry the supervisor registry next to per-cell
    /// registries.
    pub fn render_prometheus(&self, out: &mut String, extra_labels: &[(&str, &str)]) {
        use std::fmt::Write;
        let inner = self.lock();
        let labels = |session: Option<u32>| -> String {
            let mut parts: Vec<String> = extra_labels
                .iter()
                .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
                .collect();
            if let Some(s) = session {
                parts.push(format!("session=\"{s}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        };
        for (k, v) in &inner.counters {
            let _ = writeln!(
                out,
                "quicksand_{}_{}_total{} {}",
                sanitize_metric_name(k.stage),
                sanitize_metric_name(k.name),
                labels(k.session),
                v
            );
        }
        for (k, v) in &inner.gauges {
            let _ = writeln!(
                out,
                "quicksand_{}_{}{} {}",
                sanitize_metric_name(k.stage),
                sanitize_metric_name(k.name),
                labels(k.session),
                render_f64(*v)
            );
        }
        for (k, h) in &inner.histograms {
            let name = format!(
                "quicksand_{}_{}",
                sanitize_metric_name(k.stage),
                sanitize_metric_name(k.name)
            );
            let base = labels(k.session);
            // `labels()` already wrapped the set in braces (or gave an
            // empty string); splice `le` into the same brace group.
            let with_le = |le: &str| -> String {
                if base.is_empty() {
                    format!("{{le=\"{le}\"}}")
                } else {
                    format!("{},le=\"{}\"}}", &base[..base.len() - 1], le)
                }
            };
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                let le = if i < h.bounds.len() {
                    render_f64(h.bounds[i])
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(out, "{}_bucket{} {}", name, with_le(&le), cum);
            }
            let _ = writeln!(out, "{}_sum{} {}", name, base, render_f64(h.sum));
            let _ = writeln!(out, "{}_count{} {}", name, base, h.count);
        }
    }

    /// Read a counter (0 when never incremented).
    pub fn counter_value(&self, key: Key) -> u64 {
        self.lock().counters.get(&key).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge_value(&self, key: Key) -> Option<f64> {
        self.lock().gauges.get(&key).copied()
    }

    /// Sum a counter across all session-keyed variants (the stage-level
    /// entry, if present, is *not* included).
    pub fn counter_sessions_total(&self, stage: &str, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|(k, _)| k.stage == stage && k.name == name && k.session.is_some())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Snapshot every metric into a deterministic, serializable form.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| CounterEntry {
                    stage: k.stage.to_string(),
                    name: k.name.to_string(),
                    session: k.session,
                    value: v,
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, &v)| GaugeEntry {
                    stage: k.stage.to_string(),
                    name: k.name.to_string(),
                    session: k.session,
                    value: if v.is_finite() { v } else { 0.0 },
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| HistogramEntry {
                    stage: k.stage.to_string(),
                    name: k.name.to_string(),
                    session: k.session,
                    stats: h.stats(),
                })
                .collect(),
        }
    }

    /// Drop every recorded metric (tests and repeated runs).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// Replace every character outside `[a-zA-Z0-9_]` with `_` so stage
/// and metric names are always valid Prometheus metric-name segments.
fn sanitize_metric_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render an f64 the way Prometheus expects: finite values plainly,
/// non-finite as 0 (our gauges never legitimately hold them — the
/// snapshot path makes the same substitution).
fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// One counter in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Owning stage.
    pub stage: String,
    /// Metric name.
    pub name: String,
    /// Session dimension, when keyed per session.
    pub session: Option<u32>,
    /// The count.
    pub value: u64,
}

/// One gauge in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Owning stage.
    pub stage: String,
    /// Metric name.
    pub name: String,
    /// Session dimension, when keyed per session.
    pub session: Option<u32>,
    /// The last value set.
    pub value: f64,
}

/// One histogram in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Owning stage.
    pub stage: String,
    /// Metric name.
    pub name: String,
    /// Session dimension, when keyed per session.
    pub session: Option<u32>,
    /// Summary statistics.
    pub stats: HistogramStats,
}

/// A point-in-time, deterministic dump of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, ordered by `(stage, name, session)`.
    pub counters: Vec<CounterEntry>,
    /// All gauges, same order.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, same order.
    pub histograms: Vec<HistogramEntry>,
}

impl Snapshot {
    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// All stages that appear anywhere in the snapshot.
    pub fn stages(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .counters
            .iter()
            .map(|e| e.stage.as_str())
            .chain(self.gauges.iter().map(|e| e.stage.as_str()))
            .chain(self.histograms.iter().map(|e| e.stage.as_str()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Does `stage` have at least one metric besides the `wall_ms`
    /// profiling histogram?
    pub fn has_stage_metrics(&self, stage: &str) -> bool {
        self.counters.iter().any(|e| e.stage == stage)
            || self.gauges.iter().any(|e| e.stage == stage)
            || self
                .histograms
                .iter()
                .any(|e| e.stage == stage && e.name != crate::WALL_MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_is_half_open_on_the_left() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        // A value equal to a bound lands in that bound's bucket
        // (bounds are inclusive upper bounds).
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 7.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Buckets: ≤1 → {0.5, 1.0}; ≤2 → {1.5, 2.0}; ≤5 → {4.9, 5.0};
        // overflow → {7.0}.
        assert_eq!(h.counts, vec![2, 2, 2, 1]);
        assert_eq!(h.max(), Some(7.0));
        assert_eq!(h.min(), Some(0.5));
        assert!((h.sum() - 21.9).abs() < 1e-12);
    }

    #[test]
    fn quantiles_estimate_from_bucket_bounds() {
        let mut h = Histogram::new(&[10.0, 20.0, 50.0, 100.0]);
        for _ in 0..90 {
            h.record(5.0);
        }
        for _ in 0..9 {
            h.record(15.0);
        }
        h.record(80.0);
        // p50 falls in the first bucket: upper bound 10, clamped fine.
        assert_eq!(h.quantile(0.5), Some(10.0));
        // p95 falls in the second bucket (ranks 91..=99).
        assert_eq!(h.quantile(0.95), Some(20.0));
        // p99 is rank 99, still second bucket; p100 is the exact max.
        assert_eq!(h.quantile(0.99), Some(20.0));
        assert_eq!(h.quantile(1.0), Some(80.0));
        // Quantiles never exceed the observed extremes.
        let mut tiny = Histogram::new(&[1000.0]);
        tiny.record(3.0);
        assert_eq!(tiny.quantile(0.5), Some(3.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(1.5);
        // Every quantile of a single sample is that sample (clamped).
        assert_eq!(h.quantile(0.0), Some(1.5));
        assert_eq!(h.quantile(1.0), Some(1.5));
        // NaN is dropped, infinities are kept exact in min/max.
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_of_empty_histogram_are_zeroed() {
        let h = Histogram::new(&[1.0]);
        let s = h.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
        // Serializes without non-finite values.
        assert!(serde_json::to_string(&s).is_ok());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let make = || {
            let r = Registry::new();
            // Insert in scrambled order; snapshot must not care.
            r.incr(Key::session("collector", "reconnects", 3), 2);
            r.incr(Key::stage("churn", "events"), 10);
            r.incr(Key::session("collector", "reconnects", 1), 1);
            r.gauge(Key::stage("churn", "replay_rate"), 123.5);
            r.observe(Key::stage("monitor", "alarm_latency_s"), 90.0);
            r.observe(Key::stage("monitor", "alarm_latency_s"), 30.0);
            r.snapshot()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Ordering is by (stage, name, session).
        assert_eq!(a.counters[0].stage, "churn");
        assert_eq!(a.counters[1].session, Some(1));
        assert_eq!(a.counters[2].session, Some(3));
    }

    #[test]
    fn counter_session_totals() {
        let r = Registry::new();
        r.incr(Key::session("collector", "reconnects", 0), 1);
        r.incr(Key::session("collector", "reconnects", 4), 3);
        r.incr(Key::stage("collector", "reconnects"), 100);
        assert_eq!(r.counter_sessions_total("collector", "reconnects"), 4);
        assert_eq!(
            r.counter_value(Key::stage("collector", "reconnects")),
            100
        );
    }

    #[test]
    fn merge_histogram_accumulates_and_rejects_shape_mismatch() {
        let r = Registry::new();
        let key = Key::stage("churn", "apply_span_us");
        // Two profiler publishes fold into one histogram.
        r.merge_histogram(key, &LOG2_US_BOUNDS, &[1; 21], 21, 210.0, 1.0, 600000.0);
        r.merge_histogram(key, &LOG2_US_BOUNDS, &[1; 21], 21, 210.0, 0.5, 9.0);
        // Wrong bucket count: silently ignored.
        r.merge_histogram(key, &LOG2_US_BOUNDS, &[5; 3], 15, 1.0, 1.0, 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        let stats = &snap.histograms[0].stats;
        assert_eq!(stats.count, 42);
        assert_eq!(stats.min, 0.5);
        assert_eq!(stats.max, 600000.0);
        assert!(stats.p50 > 0.0 && stats.p90 >= stats.p50 && stats.p99 >= stats.p90);
    }

    #[test]
    fn prometheus_rendering_has_all_series_kinds() {
        let r = Registry::new();
        r.incr(Key::stage("churn", "events"), 42);
        r.incr(Key::session("collector", "reconnects", 3), 2);
        r.gauge(Key::stage("churn", "replay_rate"), 982.5);
        r.observe_bounded(Key::stage("monitor", "alarm_latency_s"), 30.0, &[10.0, 60.0]);
        let mut out = String::new();
        r.render_prometheus(&mut out, &[("cell", "0"), ("label", "cell-\"x\"")]);
        assert!(out.contains(
            "quicksand_churn_events_total{cell=\"0\",label=\"cell-\\\"x\\\"\"} 42"
        ));
        assert!(out.contains(
            "quicksand_collector_reconnects_total{cell=\"0\",label=\"cell-\\\"x\\\"\",session=\"3\"} 2"
        ));
        assert!(out.contains("quicksand_churn_replay_rate{cell=\"0\""));
        assert!(out.contains("le=\"10\"} 0"));
        assert!(out.contains("le=\"60\"} 1"));
        assert!(out.contains("le=\"+Inf\"} 1"));
        assert!(out.contains("quicksand_monitor_alarm_latency_s_sum"));
        assert!(out.contains("quicksand_monitor_alarm_latency_s_count"));
        // Every line is `name{labels} value` — no comments, no blanks.
        for line in out.lines() {
            assert!(line.starts_with("quicksand_"), "unexpected line: {line}");
            assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok());
        }
        // Without extra labels, unlabeled stage metrics have no braces.
        let mut plain = String::new();
        r.render_prometheus(&mut plain, &[]);
        assert!(plain.contains("quicksand_churn_events_total 42"));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let r = Registry::new();
        r.incr(Key::stage("detect", "hijacks"), 7);
        r.observe_bounded(
            Key::stage("correlate", "coefficient"),
            0.97,
            &SCORE_BOUNDS,
        );
        let snap = r.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(snap.has_stage_metrics("detect"));
        assert!(!snap.has_stage_metrics("topology"));
    }
}
