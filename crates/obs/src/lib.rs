//! `quicksand-obs` — offline observability for the simulation →
//! detection pipeline.
//!
//! An offline, zero-external-dependency layer in the spirit of
//! `tracing` + `metrics`, sized for this workspace:
//!
//! * **Events** ([`event::Event`]): structured observations emitted by
//!   instrumented stages, dispatched to a pluggable [`Subscriber`]
//!   (no-op by default, in-memory for tests, JSONL for runs, console
//!   for `repro -v`).
//! * **Metrics** ([`metrics::Registry`]): counters, gauges, and
//!   fixed-bucket histograms keyed by `(stage, name, session)` —
//!   replay rates, reconnect counts, alarm-latency histograms,
//!   fault-injector decisions, correlation scores.
//! * **Profiling** ([`timed`]): stage-level wall-clock spans recorded
//!   as `wall_ms` histograms and forwarded to the subscriber.
//! * **Run reports** ([`report::RunReport`]): the machine-readable
//!   end-of-run artifact behind `repro --obs-out=run.json` and
//!   `repro report`.
//!
//! # Dispatch model
//!
//! Every helper resolves the *current* sink: a thread-local override
//! (installed for the duration of a closure by [`with_subscriber`] /
//! [`with_metrics`]) wins over the process-wide default
//! ([`set_global_subscriber`] and the lazily-created global
//! [`Registry`]). The pipelines are single-threaded, so a thread-local
//! override scopes one test's metrics away from every other test even
//! under `cargo test`'s parallelism — and the global default keeps
//! production call sites zero-setup.
//!
//! ```
//! use quicksand_obs as obs;
//! use std::sync::Arc;
//!
//! let reg = Arc::new(obs::Registry::new());
//! let out = obs::with_metrics(reg.clone(), || {
//!     obs::timed("churn", || {
//!         obs::incr("churn", "events", 10);
//!         2 + 2
//!     })
//! });
//! assert_eq!(out, 4);
//! assert_eq!(reg.counter_value(obs::Key::stage("churn", "events")), 10);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod prof;
pub mod report;
pub mod ring;
pub mod span;
pub mod subscriber;

pub use event::{Event, FieldValue, Level};
pub use metrics::{
    Histogram, HistogramStats, Key, Registry, Snapshot, LOG2_US_BOUNDS, SCORE_BOUNDS,
};
pub use prof::{Profile, ProfileEntry};
pub use report::{ProfileSection, RunReport, SupervisorSection, REQUIRED_STAGES};
pub use ring::{RingSubscriber, DEFAULT_RING_CAP};
pub use span::{SpanGuard, SpanTree};
pub use subscriber::{
    ConsoleSubscriber, FanoutSubscriber, JsonlSubscriber, LevelFilter, MemorySubscriber,
    NoopSubscriber, Subscriber,
};

use std::cell::RefCell;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Name of the per-stage wall-time histogram recorded by [`timed`].
pub const WALL_MS: &str = "wall_ms";

static GLOBAL_SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    static LOCAL_SUBSCRIBERS: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
    static LOCAL_REGISTRIES: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Install `subscriber` as the process-wide default sink (used when no
/// thread-local override is active). Replaces any previous default.
pub fn set_global_subscriber(subscriber: Arc<dyn Subscriber>) {
    let mut slot = GLOBAL_SUBSCRIBER
        .write()
        .unwrap_or_else(|e| e.into_inner());
    *slot = Some(subscriber);
}

/// The process-wide default metrics registry (created on first use).
pub fn global_metrics() -> Arc<Registry> {
    GLOBAL_REGISTRY
        .get_or_init(|| Arc::new(Registry::new()))
        .clone()
}

/// The registry helpers currently record into: the innermost
/// [`with_metrics`] override on this thread, else the global registry.
pub fn metrics() -> Arc<Registry> {
    LOCAL_REGISTRIES
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(global_metrics)
}

fn current_subscriber() -> Option<Arc<dyn Subscriber>> {
    if let Some(local) = LOCAL_SUBSCRIBERS.with(|stack| stack.borrow().last().cloned()) {
        return Some(local);
    }
    GLOBAL_SUBSCRIBER
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

struct PopSubscriber;
impl Drop for PopSubscriber {
    fn drop(&mut self) {
        LOCAL_SUBSCRIBERS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

struct PopRegistry;
impl Drop for PopRegistry {
    fn drop(&mut self) {
        LOCAL_REGISTRIES.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Run `f` with `subscriber` as this thread's event sink. Restores the
/// previous sink on exit, including on panic.
pub fn with_subscriber<R>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    LOCAL_SUBSCRIBERS.with(|stack| stack.borrow_mut().push(subscriber));
    let _guard = PopSubscriber;
    f()
}

/// Run `f` recording metrics into `registry` on this thread. Restores
/// the previous registry on exit, including on panic.
pub fn with_metrics<R>(registry: Arc<Registry>, f: impl FnOnce() -> R) -> R {
    LOCAL_REGISTRIES.with(|stack| stack.borrow_mut().push(registry));
    let _guard = PopRegistry;
    f()
}

/// Would an event at `level` reach the current subscriber? Use to skip
/// building expensive events when nobody is listening. Stage-blind:
/// answers true when *any* stage's events would be kept (see
/// [`enabled_for`] for the per-stage check).
pub fn enabled(level: Level) -> bool {
    current_subscriber().is_some_and(|s| s.enabled(level))
}

/// Would an event at `level` from `stage` reach the current
/// subscriber? The per-stage refinement of [`enabled`], honoring
/// [`LevelFilter`] overrides.
pub fn enabled_for(level: Level, stage: &str) -> bool {
    current_subscriber().is_some_and(|s| s.enabled_for(level, stage))
}

/// Send `event` to the current subscriber (dropped when none is
/// installed or the subscriber filters out its level/stage).
pub fn emit(event: Event) {
    if let Some(s) = current_subscriber() {
        if s.enabled_for(event.level, event.stage) {
            s.event(&event);
        }
    }
}

/// The event sink currently in effect on this thread: the innermost
/// [`with_subscriber`] override, else the global default, else `None`.
/// Used to *fan out* — e.g. the supervisor pairs a per-cell flight
/// recorder with whatever sink is already active.
pub fn subscriber() -> Option<Arc<dyn Subscriber>> {
    current_subscriber()
}

/// Flush the current subscriber's buffered output.
pub fn flush() {
    if let Some(s) = current_subscriber() {
        s.flush();
    }
}

/// Add `by` to the stage-level counter `(stage, name)`.
pub fn incr(stage: &'static str, name: &'static str, by: u64) {
    metrics().incr(Key::stage(stage, name), by);
}

/// Add `by` to the per-session counter `(stage, name, session)`.
pub fn incr_session(stage: &'static str, name: &'static str, session: u32, by: u64) {
    metrics().incr(Key::session(stage, name, session), by);
}

/// Set the stage-level gauge `(stage, name)`.
pub fn gauge(stage: &'static str, name: &'static str, value: f64) {
    metrics().gauge(Key::stage(stage, name), value);
}

/// Set the per-session gauge `(stage, name, session)`.
pub fn gauge_session(stage: &'static str, name: &'static str, session: u32, value: f64) {
    metrics().gauge(Key::session(stage, name, session), value);
}

/// Record `value` into the stage-level histogram `(stage, name)` with
/// the default bucket ladder.
pub fn observe(stage: &'static str, name: &'static str, value: f64) {
    metrics().observe(Key::stage(stage, name), value);
}

/// Record `value` into the per-session histogram `(stage, name, session)`.
pub fn observe_session(stage: &'static str, name: &'static str, session: u32, value: f64) {
    metrics().observe(Key::session(stage, name, session), value);
}

/// Record `value` into `(stage, name)` with custom bucket `bounds`
/// (used for scores in `[-1, 1]`, e.g. [`SCORE_BOUNDS`]).
pub fn observe_bounded(stage: &'static str, name: &'static str, value: f64, bounds: &[f64]) {
    metrics().observe_bounded(Key::stage(stage, name), value, bounds);
}

/// Profile `f` as one span of `stage`: wall time lands in the stage's
/// `wall_ms` histogram and is forwarded to the subscriber's
/// `span_end`. Returns `f`'s result unchanged.
pub fn timed<R>(stage: &'static str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    metrics().observe(Key::stage(stage, WALL_MS), wall_ms);
    if let Some(s) = current_subscriber() {
        s.span_end(stage, wall_ms);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_record_into_thread_local_registry() {
        let reg = Arc::new(Registry::new());
        with_metrics(reg.clone(), || {
            incr("collector", "records", 5);
            incr_session("collector", "reconnects", 2, 1);
            gauge("churn", "replay_rate", 1e4);
            observe("monitor", "alarm_latency_s", 60.0);
            observe_bounded("correlate", "coefficient", 0.9, &SCORE_BOUNDS);
        });
        assert_eq!(reg.counter_value(Key::stage("collector", "records")), 5);
        assert_eq!(
            reg.counter_value(Key::session("collector", "reconnects", 2)),
            1
        );
        assert_eq!(reg.gauge_value(Key::stage("churn", "replay_rate")), Some(1e4));
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 2);
        // Nothing leaked into the global registry's view of these keys
        // beyond what other tests may write: our unique key is absent.
        assert_eq!(
            global_metrics().counter_value(Key::session("collector", "reconnects", 2)),
            0
        );
    }

    #[test]
    fn nested_overrides_unwind_in_order() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        with_metrics(outer.clone(), || {
            incr("detect", "hijacks", 1);
            with_metrics(inner.clone(), || {
                incr("detect", "hijacks", 10);
            });
            incr("detect", "hijacks", 1);
        });
        assert_eq!(outer.counter_value(Key::stage("detect", "hijacks")), 2);
        assert_eq!(inner.counter_value(Key::stage("detect", "hijacks")), 10);
    }

    #[test]
    fn override_pops_on_panic() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(|| {
            with_metrics(reg.clone(), || panic!("boom"));
        });
        assert!(result.is_err());
        // The stack unwound: records now go to the global registry,
        // not the abandoned override.
        incr("topology", "panic_probe", 1);
        assert_eq!(reg.counter_value(Key::stage("topology", "panic_probe")), 0);
    }

    #[test]
    fn timed_records_wall_ms_and_notifies_subscriber() {
        let reg = Arc::new(Registry::new());
        let sub = Arc::new(MemorySubscriber::new());
        let value = with_metrics(reg.clone(), || {
            with_subscriber(sub.clone(), || timed("topology", || 42))
        });
        assert_eq!(value, 42);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].stage, "topology");
        assert_eq!(snap.histograms[0].name, WALL_MS);
        assert_eq!(snap.histograms[0].stats.count, 1);
        let spans = sub.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "topology");
        assert!(spans[0].1 >= 0.0);
    }

    #[test]
    fn emit_respects_subscriber_level_filter() {
        let sub = Arc::new(MemorySubscriber::new());
        with_subscriber(sub.clone(), || {
            assert!(enabled(Level::Debug));
            emit(Event::new(Level::Info, "repro", "note", "kept"));
        });
        // Outside the override (and with no global set by this test),
        // events may still reach a global subscriber installed by
        // another test — only assert on our scoped sink.
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.events()[0].message, "kept");
    }
}
