//! Subscribers: pluggable event sinks.
//!
//! Instrumented code calls [`crate::emit`]; the *current* subscriber —
//! a thread-local override installed by [`crate::with_subscriber`], or
//! the process-wide default set by [`crate::set_global_subscriber`] —
//! decides what happens to each [`Event`]. The default is
//! [`NoopSubscriber`], which reports itself disabled at every level so
//! call sites can skip even message formatting.

use crate::event::{Event, Level};
use serde::Serialize;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// An event sink.
///
/// Implementations must be cheap to call: `emit` sits on the pipeline's
/// progress paths (not the per-record hot loops, but still called
/// thousands of times in a chaos sweep).
pub trait Subscriber: Send + Sync {
    /// Would an event at `level` be kept? Call sites use this to skip
    /// constructing expensive events entirely.
    fn enabled(&self, level: Level) -> bool {
        let _ = level;
        true
    }

    /// Consume one event.
    fn event(&self, event: &Event);

    /// A profiled span finished: `stage` ran for `wall_ms`.
    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        let _ = (stage, wall_ms);
    }

    /// Flush any buffered output (end of run).
    fn flush(&self) {}
}

/// Discards everything; the default subscriber.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self, _level: Level) -> bool {
        false
    }

    fn event(&self, _event: &Event) {}
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Buffers every event in memory; the test subscriber and the source
/// of the run report's alarm timeline.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    events: Mutex<Vec<Event>>,
    spans: Mutex<Vec<(&'static str, f64)>>,
}

impl MemorySubscriber {
    /// A fresh, empty buffer.
    pub fn new() -> MemorySubscriber {
        MemorySubscriber::default()
    }

    /// A clone of every buffered event, in emission order.
    pub fn events(&self) -> Vec<Event> {
        lock_ignoring_poison(&self.events).clone()
    }

    /// Every `(stage, wall_ms)` span completion, in order.
    pub fn spans(&self) -> Vec<(&'static str, f64)> {
        lock_ignoring_poison(&self.spans).clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.events).len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for MemorySubscriber {
    fn event(&self, event: &Event) {
        lock_ignoring_poison(&self.events).push(event.clone());
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        lock_ignoring_poison(&self.spans).push((stage, wall_ms));
    }
}

/// Appends one JSON object per event (and per span completion) to a
/// writer — the run-log format consumed by external tooling.
pub struct JsonlSubscriber<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
}

impl JsonlSubscriber<std::fs::File> {
    /// Create (truncating) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSubscriber::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSubscriber<W> {
    /// Wrap an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSubscriber {
            out: Mutex::new(BufWriter::new(out)),
        }
    }

    fn write_line(&self, line: &str) {
        let mut out = lock_ignoring_poison(&self.out);
        // Best-effort: a full disk must not abort the simulation.
        let _ = writeln!(out, "{line}");
    }
}

impl<W: Write + Send> Subscriber for JsonlSubscriber<W> {
    fn event(&self, event: &Event) {
        // Events stringify non-finite floats, so serialization cannot
        // fail; stay defensive anyway.
        if let Ok(line) = serde_json::to_string(&event.to_value()) {
            self.write_line(&line);
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        let stage_json = serde_json::to_string(&serde::Value::Str(stage.to_string()))
            .unwrap_or_else(|_| "\"?\"".to_string());
        let line = format!(
            "{{\"span\":{stage_json},\"wall_ms\":{}}}",
            if wall_ms.is_finite() { wall_ms } else { 0.0 }
        );
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = lock_ignoring_poison(&self.out).flush();
    }
}

/// Renders events at or above a minimum level to stderr — the
/// replacement for the old scattered `eprintln!` progress chatter.
#[derive(Clone, Copy, Debug)]
pub struct ConsoleSubscriber {
    min_level: Level,
}

impl ConsoleSubscriber {
    /// Print events at `min_level` and above.
    pub fn new(min_level: Level) -> ConsoleSubscriber {
        ConsoleSubscriber { min_level }
    }
}

impl Default for ConsoleSubscriber {
    fn default() -> Self {
        ConsoleSubscriber::new(Level::Info)
    }
}

impl Subscriber for ConsoleSubscriber {
    fn enabled(&self, level: Level) -> bool {
        level >= self.min_level
    }

    fn event(&self, event: &Event) {
        if self.enabled(event.level) {
            eprintln!("{}", event.render());
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        if self.enabled(Level::Debug) {
            eprintln!("[{stage}] span: done wall_ms={wall_ms:.1}");
        }
    }
}

/// Broadcasts every call to a set of inner subscribers (e.g. console +
/// JSONL + memory in a `repro --obs-out` run).
pub struct FanoutSubscriber {
    inner: Vec<Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// Fan out to `inner`, in order.
    pub fn new(inner: Vec<Arc<dyn Subscriber>>) -> FanoutSubscriber {
        FanoutSubscriber { inner }
    }
}

impl Subscriber for FanoutSubscriber {
    fn enabled(&self, level: Level) -> bool {
        self.inner.iter().any(|s| s.enabled(level))
    }

    fn event(&self, event: &Event) {
        for s in &self.inner {
            s.event(event);
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        for s in &self.inner {
            s.span_end(stage, wall_ms);
        }
    }

    fn flush(&self) {
        for s in &self.inner {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_at_every_level() {
        let s = NoopSubscriber;
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert!(!s.enabled(l));
        }
    }

    #[test]
    fn memory_buffers_in_order() {
        let s = MemorySubscriber::new();
        s.event(&Event::new(Level::Info, "churn", "start", "a"));
        s.event(&Event::new(Level::Warn, "collector", "stale", "b"));
        s.span_end("churn", 12.0);
        let ev = s.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "start");
        assert_eq!(ev[1].stage, "collector");
        assert_eq!(s.spans(), vec![("churn", 12.0)]);
    }

    #[test]
    fn jsonl_writes_one_object_per_line() {
        let s = JsonlSubscriber::new(Vec::new());
        s.event(&Event::new(Level::Info, "monitor", "alarm", "x").with("at_s", 3.0));
        s.span_end("monitor", 1.5);
        s.flush();
        let buf = s.out.into_inner().unwrap().into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"alarm\""));
        assert!(lines[1].contains("\"span\":\"monitor\""));
        // Every line parses as standalone JSON.
        for l in &lines {
            assert!(serde_json::from_str::<serde::Value>(l).is_ok());
        }
    }

    #[test]
    fn console_filters_by_level() {
        let s = ConsoleSubscriber::new(Level::Warn);
        assert!(!s.enabled(Level::Info));
        assert!(s.enabled(Level::Warn));
        assert!(s.enabled(Level::Error));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySubscriber::new());
        let b = Arc::new(MemorySubscriber::new());
        let f = FanoutSubscriber::new(vec![a.clone(), b.clone()]);
        f.event(&Event::new(Level::Info, "detect", "done", "x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // Enabled if any inner sink is enabled.
        let g = FanoutSubscriber::new(vec![
            Arc::new(NoopSubscriber) as Arc<dyn Subscriber>,
            Arc::new(ConsoleSubscriber::new(Level::Error)),
        ]);
        assert!(!g.enabled(Level::Info));
        assert!(g.enabled(Level::Error));
    }
}
