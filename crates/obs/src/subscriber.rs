//! Subscribers: pluggable event sinks.
//!
//! Instrumented code calls [`crate::emit`]; the *current* subscriber —
//! a thread-local override installed by [`crate::with_subscriber`], or
//! the process-wide default set by [`crate::set_global_subscriber`] —
//! decides what happens to each [`Event`]. The default is
//! [`NoopSubscriber`], which reports itself disabled at every level so
//! call sites can skip even message formatting.

use crate::event::{Event, Level};
use serde::Serialize;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// An event sink.
///
/// Implementations must be cheap to call: `emit` sits on the pipeline's
/// progress paths (not the per-record hot loops, but still called
/// thousands of times in a chaos sweep).
pub trait Subscriber: Send + Sync {
    /// Would an event at `level` be kept? Call sites use this to skip
    /// constructing expensive events entirely.
    fn enabled(&self, level: Level) -> bool {
        let _ = level;
        true
    }

    /// Would an event at `level` from `stage` be kept? Defaults to the
    /// stage-blind [`Subscriber::enabled`]; subscribers with per-stage
    /// overrides (a [`LevelFilter`]) refine it. `enabled` must stay
    /// the *most permissive* answer across stages so a `true` from it
    /// never suppresses an event some stage still wants.
    fn enabled_for(&self, level: Level, stage: &str) -> bool {
        let _ = stage;
        self.enabled(level)
    }

    /// Consume one event.
    fn event(&self, event: &Event);

    /// A profiled span finished: `stage` ran for `wall_ms`.
    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        let _ = (stage, wall_ms);
    }

    /// Flush any buffered output (end of run).
    fn flush(&self) {}
}

/// Discards everything; the default subscriber.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self, _level: Level) -> bool {
        false
    }

    fn event(&self, _event: &Event) {}
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Buffers every event in memory; the test subscriber and the source
/// of the run report's alarm timeline.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    events: Mutex<Vec<Event>>,
    spans: Mutex<Vec<(&'static str, f64)>>,
}

impl MemorySubscriber {
    /// A fresh, empty buffer.
    pub fn new() -> MemorySubscriber {
        MemorySubscriber::default()
    }

    /// A clone of every buffered event, in emission order.
    pub fn events(&self) -> Vec<Event> {
        lock_ignoring_poison(&self.events).clone()
    }

    /// Every `(stage, wall_ms)` span completion, in order.
    pub fn spans(&self) -> Vec<(&'static str, f64)> {
        lock_ignoring_poison(&self.spans).clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_ignoring_poison(&self.events).len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for MemorySubscriber {
    fn event(&self, event: &Event) {
        lock_ignoring_poison(&self.events).push(event.clone());
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        lock_ignoring_poison(&self.spans).push((stage, wall_ms));
    }
}

/// Appends one JSON object per event (and per span completion) to a
/// writer — the run-log format consumed by external tooling.
pub struct JsonlSubscriber<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
}

impl JsonlSubscriber<std::fs::File> {
    /// Create (truncating) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSubscriber::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSubscriber<W> {
    /// Wrap an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSubscriber {
            out: Mutex::new(BufWriter::new(out)),
        }
    }

    fn write_line(&self, line: &str) {
        let mut out = lock_ignoring_poison(&self.out);
        // Best-effort: a full disk must not abort the simulation.
        let _ = writeln!(out, "{line}");
    }
}

impl<W: Write + Send> Subscriber for JsonlSubscriber<W> {
    fn event(&self, event: &Event) {
        // Events stringify non-finite floats, so serialization cannot
        // fail; stay defensive anyway.
        if let Ok(line) = serde_json::to_string(&event.to_value()) {
            self.write_line(&line);
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        let stage_json = serde_json::to_string(&serde::Value::Str(stage.to_string()))
            .unwrap_or_else(|_| "\"?\"".to_string());
        let line = format!(
            "{{\"span\":{stage_json},\"wall_ms\":{}}}",
            if wall_ms.is_finite() { wall_ms } else { 0.0 }
        );
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = lock_ignoring_poison(&self.out).flush();
    }
}

/// A minimum level with optional per-stage overrides, parsed from the
/// `--log-level` flag / `QUICKSAND_LOG` env spec: a bare level
/// (`"info"`) and/or comma-separated `stage=level` pairs
/// (`"warn,routing=debug,churn=error"`). Later entries win on
/// duplicate stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelFilter {
    default_level: Level,
    overrides: Vec<(String, Level)>,
}

impl LevelFilter {
    /// Keep everything at `level` and above, for every stage.
    pub fn uniform(level: Level) -> LevelFilter {
        LevelFilter {
            default_level: level,
            overrides: Vec::new(),
        }
    }

    /// Parse a spec like `"info"`, `"routing=debug"`, or
    /// `"warn,routing=debug,churn=error"`. A bare level sets the
    /// default (last bare entry wins); `stage=level` entries override
    /// per stage. Errors name the offending token.
    pub fn parse(spec: &str) -> Result<LevelFilter, String> {
        let mut filter = LevelFilter::uniform(Level::Info);
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            match token.split_once('=') {
                None => {
                    filter.default_level = Level::parse(token)
                        .ok_or_else(|| format!("unknown level {token:?}"))?;
                }
                Some((stage, level)) => {
                    let stage = stage.trim();
                    if stage.is_empty() {
                        return Err(format!("empty stage in {token:?}"));
                    }
                    let level = Level::parse(level)
                        .ok_or_else(|| format!("unknown level in {token:?}"))?;
                    filter.retain_stage(stage);
                    filter.overrides.push((stage.to_string(), level));
                }
            }
        }
        Ok(filter)
    }

    fn retain_stage(&mut self, stage: &str) {
        self.overrides.retain(|(s, _)| s != stage);
    }

    /// The threshold for events from `stage`.
    pub fn level_for(&self, stage: &str) -> Level {
        self.overrides
            .iter()
            .find(|(s, _)| s == stage)
            .map_or(self.default_level, |(_, l)| *l)
    }

    /// The most permissive threshold across every stage — what a
    /// stage-blind `enabled(level)` check must answer so no stage's
    /// events get suppressed early.
    pub fn min_level(&self) -> Level {
        self.overrides
            .iter()
            .map(|(_, l)| *l)
            .fold(self.default_level, |a, b| a.min(b))
    }
}

/// Renders events at or above a level filter to stderr — the
/// replacement for the old scattered `eprintln!` progress chatter.
#[derive(Clone, Debug)]
pub struct ConsoleSubscriber {
    filter: LevelFilter,
}

impl ConsoleSubscriber {
    /// Print events at `min_level` and above, for every stage.
    pub fn new(min_level: Level) -> ConsoleSubscriber {
        ConsoleSubscriber::with_filter(LevelFilter::uniform(min_level))
    }

    /// Print events passing `filter` (per-stage thresholds).
    pub fn with_filter(filter: LevelFilter) -> ConsoleSubscriber {
        ConsoleSubscriber { filter }
    }
}

impl Default for ConsoleSubscriber {
    fn default() -> Self {
        ConsoleSubscriber::new(Level::Info)
    }
}

impl Subscriber for ConsoleSubscriber {
    fn enabled(&self, level: Level) -> bool {
        level >= self.filter.min_level()
    }

    fn enabled_for(&self, level: Level, stage: &str) -> bool {
        level >= self.filter.level_for(stage)
    }

    fn event(&self, event: &Event) {
        // Self-filter: fanout broadcast reaches every sink whenever
        // *any* sink wants the event.
        if self.enabled_for(event.level, event.stage) {
            eprintln!("{}", event.render());
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        if self.enabled_for(Level::Debug, stage) {
            eprintln!("[{stage}] span: done wall_ms={wall_ms:.1}");
        }
    }
}

/// Broadcasts every call to a set of inner subscribers (e.g. console +
/// JSONL + memory in a `repro --obs-out` run).
pub struct FanoutSubscriber {
    inner: Vec<Arc<dyn Subscriber>>,
}

impl FanoutSubscriber {
    /// Fan out to `inner`, in order.
    pub fn new(inner: Vec<Arc<dyn Subscriber>>) -> FanoutSubscriber {
        FanoutSubscriber { inner }
    }
}

impl Subscriber for FanoutSubscriber {
    fn enabled(&self, level: Level) -> bool {
        self.inner.iter().any(|s| s.enabled(level))
    }

    fn enabled_for(&self, level: Level, stage: &str) -> bool {
        self.inner.iter().any(|s| s.enabled_for(level, stage))
    }

    fn event(&self, event: &Event) {
        for s in &self.inner {
            s.event(event);
        }
    }

    fn span_end(&self, stage: &'static str, wall_ms: f64) {
        for s in &self.inner {
            s.span_end(stage, wall_ms);
        }
    }

    fn flush(&self) {
        for s in &self.inner {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_at_every_level() {
        let s = NoopSubscriber;
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert!(!s.enabled(l));
        }
    }

    #[test]
    fn memory_buffers_in_order() {
        let s = MemorySubscriber::new();
        s.event(&Event::new(Level::Info, "churn", "start", "a"));
        s.event(&Event::new(Level::Warn, "collector", "stale", "b"));
        s.span_end("churn", 12.0);
        let ev = s.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "start");
        assert_eq!(ev[1].stage, "collector");
        assert_eq!(s.spans(), vec![("churn", 12.0)]);
    }

    #[test]
    fn jsonl_writes_one_object_per_line() {
        let s = JsonlSubscriber::new(Vec::new());
        s.event(&Event::new(Level::Info, "monitor", "alarm", "x").with("at_s", 3.0));
        s.span_end("monitor", 1.5);
        s.flush();
        let buf = s.out.into_inner().unwrap().into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"alarm\""));
        assert!(lines[1].contains("\"span\":\"monitor\""));
        // Every line parses as standalone JSON.
        for l in &lines {
            assert!(serde_json::from_str::<serde::Value>(l).is_ok());
        }
    }

    #[test]
    fn console_filters_by_level() {
        let s = ConsoleSubscriber::new(Level::Warn);
        assert!(!s.enabled(Level::Info));
        assert!(s.enabled(Level::Warn));
        assert!(s.enabled(Level::Error));
    }

    #[test]
    fn level_filter_parses_specs_with_per_stage_overrides() {
        let f = LevelFilter::parse("warn,routing=debug,churn=error").unwrap();
        assert_eq!(f.level_for("routing"), Level::Debug);
        assert_eq!(f.level_for("churn"), Level::Error);
        assert_eq!(f.level_for("collector"), Level::Warn);
        // The blanket answer must be the most permissive threshold.
        assert_eq!(f.min_level(), Level::Debug);
        // A bare level alone is a uniform filter.
        assert_eq!(
            LevelFilter::parse("ERROR").unwrap(),
            LevelFilter::uniform(Level::Error)
        );
        // Later duplicate stages win; "warning" aliases warn.
        let f = LevelFilter::parse("routing=debug,routing=warning").unwrap();
        assert_eq!(f.level_for("routing"), Level::Warn);
        // Empty segments are tolerated, garbage is not.
        assert!(LevelFilter::parse("info,,churn=warn").is_ok());
        assert!(LevelFilter::parse("loud").is_err());
        assert!(LevelFilter::parse("churn=loud").is_err());
        assert!(LevelFilter::parse("=debug").is_err());
    }

    #[test]
    fn console_with_filter_applies_per_stage_thresholds() {
        let s = ConsoleSubscriber::with_filter(
            LevelFilter::parse("warn,routing=debug").unwrap(),
        );
        assert!(s.enabled_for(Level::Debug, "routing"));
        assert!(!s.enabled_for(Level::Debug, "churn"));
        assert!(!s.enabled_for(Level::Info, "churn"));
        assert!(s.enabled_for(Level::Warn, "churn"));
        // Stage-blind enabled() stays most-permissive.
        assert!(s.enabled(Level::Debug));
    }

    #[test]
    fn fanout_enabled_for_respects_stage_overrides() {
        let f = FanoutSubscriber::new(vec![Arc::new(ConsoleSubscriber::with_filter(
            LevelFilter::parse("error,monitor=info").unwrap(),
        )) as Arc<dyn Subscriber>]);
        assert!(f.enabled_for(Level::Info, "monitor"));
        assert!(!f.enabled_for(Level::Info, "churn"));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySubscriber::new());
        let b = Arc::new(MemorySubscriber::new());
        let f = FanoutSubscriber::new(vec![a.clone(), b.clone()]);
        f.event(&Event::new(Level::Info, "detect", "done", "x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // Enabled if any inner sink is enabled.
        let g = FanoutSubscriber::new(vec![
            Arc::new(NoopSubscriber) as Arc<dyn Subscriber>,
            Arc::new(ConsoleSubscriber::new(Level::Error)),
        ]);
        assert!(!g.enabled(Level::Info));
        assert!(g.enabled(Level::Error));
    }
}
