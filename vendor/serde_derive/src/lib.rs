//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-tree serde.
//!
//! No `syn`/`quote` (the build environment is fully offline), so the item
//! is parsed directly from the `proc_macro` token stream. Supported
//! shapes — exactly what this workspace uses:
//!
//! * non-generic structs: named, tuple (newtype included), unit
//! * non-generic enums: unit, tuple, and struct variants (externally
//!   tagged, unit variants as plain strings)
//! * container attrs `#[serde(transparent)]` and
//!   `#[serde(try_from = "String", into = "String")]`
//! * field attrs `#[serde(skip)]`, `#[serde(default)]` (missing field →
//!   `Default::default()`), and
//!   `#[serde(skip_serializing_if = "Option::is_none")]` (omit the key
//!   when the field serializes to `Null`)
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derive the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    generate(input, Mode::Ser)
}

/// Derive the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    generate(input, Mode::De)
}

// ---- model ---------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from_string: bool,
    into_string: bool,
}

#[derive(Default)]
struct FieldAttrs {
    skip: bool,
    /// `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(skip_serializing_if = "Option::is_none")]`: omit the
    /// key when the field serializes to `Null`.
    skip_if_none: bool,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<bool /* skip */>),
    UnitStruct,
    Enum(Vec<Variant>),
}

// ---- token helpers -------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Parse one `#[...]` attribute group; record serde container/field info.
fn scan_attr(g: &Group, out: &mut ContainerAttrs, field: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() || ident_str(&toks[0]).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match ident_str(&inner[i]).as_deref() {
            Some("transparent") => out.transparent = true,
            Some("skip") => field.skip = true,
            Some("default") => field.default = true,
            Some("skip_serializing_if") => {
                if is_punct(&inner[i + 1], '=') {
                    let lit = inner[i + 2].to_string();
                    assert!(
                        lit.trim_matches('"') == "Option::is_none",
                        "serde derive stub: only skip_serializing_if = \"Option::is_none\" \
                         is supported, got {lit}"
                    );
                    field.skip_if_none = true;
                    i += 2;
                }
            }
            Some(key @ ("try_from" | "into")) => {
                // key = "Type"
                if is_punct(&inner[i + 1], '=') {
                    let lit = inner[i + 2].to_string();
                    if lit.trim_matches('"') == "String" {
                        match key {
                            "try_from" => out.try_from_string = true,
                            _ => out.into_string = true,
                        }
                    } else {
                        panic!("serde derive stub: only String conversions supported, got {lit}");
                    }
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
        // skip separating comma if present
        if i < inner.len() && is_punct(&inner[i], ',') {
            i += 1;
        }
    }
}

/// Advance past any leading attributes, collecting serde info.
fn skip_attrs(
    toks: &[TokenTree],
    mut i: usize,
    attrs: &mut ContainerAttrs,
    field: &mut FieldAttrs,
) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            scan_attr(g, attrs, field);
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Advance past a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && ident_str(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advance past a type, tracking `<`/`>` depth, stopping at a top-level
/// comma (or end).
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if is_punct(&toks[i], '<') {
            depth += 1;
        } else if is_punct(&toks[i], '>') {
            depth -= 1;
        } else if is_punct(&toks[i], ',') && depth == 0 {
            break;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut dummy = ContainerAttrs::default();
        let mut attrs = FieldAttrs::default();
        i = skip_attrs(&toks, i, &mut dummy, &mut attrs);
        i = skip_vis(&toks, i);
        let Some(name) = toks.get(i).and_then(ident_str) else {
            break;
        };
        i += 1;
        assert!(is_punct(&toks[i], ':'), "serde derive stub: expected `:` after field `{name}`");
        i = skip_type(&toks, i + 1);
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_tuple_fields(g: &Group) -> Vec<bool> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut skips = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut dummy = ContainerAttrs::default();
        let mut attrs = FieldAttrs::default();
        i = skip_attrs(&toks, i, &mut dummy, &mut attrs);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        i = skip_type(&toks, i);
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        skips.push(attrs.skip);
    }
    skips
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut dummy = ContainerAttrs::default();
        let mut fattrs = FieldAttrs::default();
        i = skip_attrs(&toks, i, &mut dummy, &mut fattrs);
        let Some(name) = toks.get(i).and_then(ident_str) else {
            break;
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(parse_tuple_fields(vg).len())
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(vg))
            }
            _ => VariantKind::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, ContainerAttrs, Item) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut dummy = FieldAttrs::default();
    let mut i = skip_attrs(&toks, 0, &mut attrs, &mut dummy);
    i = skip_vis(&toks, i);
    let kw = toks
        .get(i)
        .and_then(ident_str)
        .expect("serde derive stub: expected `struct` or `enum`");
    i += 1;
    let name = toks
        .get(i)
        .and_then(ident_str)
        .expect("serde derive stub: expected item name");
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        panic!("serde derive stub: generic types are not supported (on `{name}`)");
    }
    let item = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(parse_tuple_fields(g))
            }
            Some(t) if is_punct(t, ';') => Item::UnitStruct,
            other => panic!("serde derive stub: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g))
            }
            other => panic!("serde derive stub: unexpected enum body: {other:?}"),
        },
        other => panic!("serde derive stub: unsupported item kind `{other}`"),
    };
    (name, attrs, item)
}

// ---- codegen -------------------------------------------------------------

fn generate(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, attrs, item) = parse_item(input);
    let body = if attrs.try_from_string || attrs.into_string {
        gen_string_conv(&name, mode)
    } else {
        match &item {
            Item::NamedStruct(fields) => gen_named_struct(&name, fields, attrs.transparent, mode),
            Item::TupleStruct(skips) => gen_tuple_struct(&name, skips, mode),
            Item::UnitStruct => gen_unit_struct(&name, mode),
            Item::Enum(variants) => gen_enum(&name, variants, mode),
        }
    };
    body.parse().expect("serde derive stub: generated code failed to parse")
}

fn gen_string_conv(name: &str, mode: Mode) -> String {
    match mode {
        Mode::Ser => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{
                    let __s: String = ::std::convert::Into::into(::std::clone::Clone::clone(self));
                    ::serde::Value::Str(__s)
                }}
            }}"
        ),
        Mode::De => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                    let __s = <String as ::serde::Deserialize>::from_value(__v)?;
                    <Self as ::std::convert::TryFrom<String>>::try_from(__s)
                        .map_err(|__e| ::serde::DeError::custom(::std::format!(\"{{}}\", __e)))
                }}
            }}"
        ),
    }
}

fn gen_named_struct(name: &str, fields: &[Field], transparent: bool, mode: Mode) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.attrs.skip).collect();
    if transparent {
        assert!(
            live.len() == 1,
            "serde derive stub: transparent struct `{name}` must have exactly one field"
        );
        let f = &live[0].name;
        return match mode {
            Mode::Ser => format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Serialize::to_value(&self.{f})
                    }}
                }}"
            ),
            Mode::De => {
                let inits = fields
                    .iter()
                    .map(|fd| {
                        if fd.attrs.skip {
                            format!("{}: ::std::default::Default::default(),", fd.name)
                        } else {
                            format!("{}: ::serde::Deserialize::from_value(__v)?,", fd.name)
                        }
                    })
                    .collect::<String>();
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                            ::std::result::Result::Ok({name} {{ {inits} }})
                        }}
                    }}"
                )
            }
        };
    }
    match mode {
        Mode::Ser => {
            let pushes = live
                .iter()
                .map(|f| {
                    if f.attrs.skip_if_none {
                        format!(
                            "{{ let __x = ::serde::Serialize::to_value(&self.{0});
                               if !::std::matches!(__x, ::serde::Value::Null) {{
                                   __m.push((::serde::Value::Str(\"{0}\".to_string()), __x));
                               }} }}",
                            f.name
                        )
                    } else {
                        format!(
                            "__m.push((::serde::Value::Str(\"{0}\".to_string()), ::serde::Serialize::to_value(&self.{0})));",
                            f.name
                        )
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut __m: ::std::vec::Vec<(::serde::Value, ::serde::Value)> =
                            ::std::vec::Vec::new();
                        {pushes}
                        ::serde::Value::Map(__m)
                    }}
                }}"
            )
        }
        Mode::De => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.attrs.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else if f.attrs.default {
                        format!(
                            "{0}: match __v.field(\"{0}\") {{
                                ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,
                                ::std::option::Option::None => ::std::default::Default::default(),
                            }},",
                            f.name
                        )
                    } else {
                        format!(
                            "{0}: match __v.field(\"{0}\") {{
                                ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,
                                ::std::option::Option::None =>
                                    return ::std::result::Result::Err(::serde::DeError::missing_field(\"{0}\")),
                            }},",
                            f.name
                        )
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        if __v.as_map().is_none() {{
                            return ::std::result::Result::Err(::serde::DeError::expected(\"object\", __v));
                        }}
                        ::std::result::Result::Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
    }
}

fn gen_tuple_struct(name: &str, skips: &[bool], mode: Mode) -> String {
    let arity = skips.len();
    assert!(
        !skips.iter().any(|&s| s),
        "serde derive stub: #[serde(skip)] on tuple struct fields is not supported"
    );
    if arity == 1 {
        // Newtype: transparent, matching upstream serde.
        return match mode {
            Mode::Ser => format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Serialize::to_value(&self.0)
                    }}
                }}"
            ),
            Mode::De => format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))
                    }}
                }}"
            ),
        };
    }
    match mode {
        Mode::Ser => {
            let items = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Seq(::std::vec![{items}])
                    }}
                }}"
            )
        }
        Mode::De => {
            let items = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", __v))?;
                        if __s.len() != {arity} {{
                            return ::std::result::Result::Err(::serde::DeError::custom(
                                ::std::format!(\"expected array of {arity}, got {{}}\", __s.len())));
                        }}
                        ::std::result::Result::Ok({name}({items}))
                    }}
                }}"
            )
        }
    }
}

fn gen_unit_struct(name: &str, mode: Mode) -> String {
    match mode {
        Mode::Ser => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Mode::De => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                    ::std::result::Result::Ok({name})
                }}
            }}"
        ),
    }
}

fn gen_enum(name: &str, variants: &[Variant], mode: Mode) -> String {
    match mode {
        Mode::Ser => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![
                                (::serde::Value::Str(\"{vn}\".to_string()), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds = (0..*n).map(|i| format!("__f{i},")).collect::<String>();
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                                .collect::<String>();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![
                                    (::serde::Value::Str(\"{vn}\".to_string()),
                                     ::serde::Value::Seq(::std::vec![{items}]))]),"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| format!("{},", f.name))
                                .collect::<String>();
                            let items = fields
                                .iter()
                                .filter(|f| !f.attrs.skip)
                                .map(|f| {
                                    format!(
                                        "(::serde::Value::Str(\"{0}\".to_string()), ::serde::Serialize::to_value({0})),",
                                        f.name
                                    )
                                })
                                .collect::<String>();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![
                                    (::serde::Value::Str(\"{vn}\".to_string()),
                                     ::serde::Value::Map(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
        Mode::De => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect::<String>();
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(
                                ::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?,"))
                                .collect::<String>();
                            Some(format!(
                                "\"{vn}\" => {{
                                    let __s = __val.as_seq().ok_or_else(||
                                        ::serde::DeError::expected(\"array\", __val))?;
                                    if __s.len() != {n} {{
                                        return ::std::result::Result::Err(::serde::DeError::custom(
                                            ::std::format!(\"variant {vn}: expected {n} fields, got {{}}\", __s.len())));
                                    }}
                                    ::std::result::Result::Ok({name}::{vn}({items}))
                                }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    if f.attrs.skip {
                                        format!("{}: ::std::default::Default::default(),", f.name)
                                    } else {
                                        format!(
                                            "{0}: match __val.field(\"{0}\") {{
                                                ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,
                                                ::std::option::Option::None =>
                                                    return ::std::result::Result::Err(::serde::DeError::missing_field(\"{0}\")),
                                            }},",
                                            f.name
                                        )
                                    }
                                })
                                .collect::<String>();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        if let ::std::option::Option::Some(__s) = __v.as_str() {{
                            return match __s {{
                                {unit_arms}
                                __other => ::std::result::Result::Err(::serde::DeError::custom(
                                    ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),
                            }};
                        }}
                        if let ::std::option::Option::Some(__m) = __v.as_map() {{
                            if __m.len() == 1 {{
                                let (__k, __val) = &__m[0];
                                if let ::std::option::Option::Some(__tag) = __k.as_str() {{
                                    return match __tag {{
                                        {data_arms}
                                        __other => ::std::result::Result::Err(::serde::DeError::custom(
                                            ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),
                                    }};
                                }}
                            }}
                        }}
                        ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", __v))
                    }}
                }}"
            )
        }
    }
}
