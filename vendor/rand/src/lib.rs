//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace ships a minimal, deterministic implementation of the
//! `rand 0.8` API subset it actually uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, range sampling, and slice shuffling. The stream of values is
//! *not* bit-compatible with upstream `rand`; everything downstream
//! treats seeds as opaque, so only determinism matters.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


pub mod distributions;
pub mod prelude;
pub mod rngs;
pub mod seq;

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        distributions::unit_f64(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
