//! Concrete RNGs: [`StdRng`], a xoshiro256++ generator.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded RNG (xoshiro256++).
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12); the
/// workspace only relies on determinism under a fixed seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}
