//! Distributions: the [`Distribution`] trait, [`Standard`], and uniform
//! range sampling used by `Rng::gen_range`.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// A uniform `f64` in `[0, 1)` with 53 bits of precision.
pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The "natural" distribution for a type: full-range integers, unit
/// interval floats, fair bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

/// Types `Rng::gen_range` can sample uniformly from a range.
///
/// Mirroring upstream, `SampleRange` is a *blanket* impl over this
/// trait — a single impl per range shape keeps type inference flowing
/// from the call site's expected type into integer literals (otherwise
/// `gen_range(0..12)` in a `u64` context falls back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}
