//! Vendored offline stand-in for `serde_json`.
//!
//! Converts between the vendored serde [`Value`] tree and JSON text.
//! Covers the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and an [`Error`] type.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


use serde::{Deserialize, Serialize, Value};

/// A JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.i)));
    }
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

// ---- writer --------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` gives a shortest round-trippable representation.
                out.push_str(&format!("{f:?}"));
            } else {
                return Err(Error::new("non-finite float is not valid JSON"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                match k {
                    Value::Str(s) => write_string(s, out),
                    // serde_json quotes integer map keys.
                    Value::U64(n) => write_string(&n.to_string(), out),
                    Value::I64(n) => write_string(&n.to_string(), out),
                    other => {
                        return Err(Error::new(format!(
                            "map key must be a string or integer, got {}",
                            other.kind()
                        )))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                c as char, self.i
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.b[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((Value::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at offset {}", self.i))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => s.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let decoded = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(decoded);
                    self.i = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .b
            .get(self.i..self.i + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(to_string("hi\n\"x\"").unwrap(), r#""hi\n\"x\"""#);
        assert_eq!(from_str::<String>(r#""hi\n\"x\"""#).unwrap(), "hi\n\"x\"");
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(5u32, "five".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"5":"five"}"#);
        assert_eq!(from_str::<std::collections::BTreeMap<u32, String>>(&s).unwrap(), m);
    }

    #[test]
    fn floats_roundtrip() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.25);
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("[").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_has_newlines() {
        let v: Vec<u32> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }
}
