//! Vendored offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Good enough to run benches offline and eyeball
//! regressions; not a replacement for real criterion numbers.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Passed to bench closures; its [`iter`](Bencher::iter) runs the body.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Measure `f`, reporting the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = times[times.len() / 2];
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_ns: f64::NAN,
    };
    f(&mut b);
    if b.last_ns.is_finite() {
        println!("bench {name:<50} {:>14.0} ns/iter", b.last_ns);
    } else {
        println!("bench {name:<50} (no measurement)");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into_id(), 5, |b| f(b));
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: 5,
        }
    }

    /// Accept CLI args (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, |b| f(b));
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.samples, |b| f(b, input));
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Define a function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
