//! Vendored offline stand-in for `rand_distr`.
//!
//! Implements the distributions this workspace samples — [`Exp`],
//! [`Pareto`], and [`Normal`] — by inverse-transform (and Box–Muller)
//! over the vendored `rand` core. Value streams are not bit-compatible
//! with upstream `rand_distr`; callers rely only on seeded determinism
//! and the correct distribution family.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


pub use rand::distributions::Distribution;
use rand::distributions::unit_f64;
use rand::RngCore;

/// Parameter error for every distribution in this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// A new exponential distribution; `lambda` must be finite and > 0.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp lambda must be finite and > 0"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
        -(1.0 - unit_f64(rng)).ln() / self.lambda
    }
}

/// Pareto distribution with minimum `scale` and tail index `shape`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// A new Pareto distribution; both parameters must be finite and > 0.
    pub fn new(scale: f64, shape: f64) -> Result<Pareto, ParamError> {
        if scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0 {
            Ok(Pareto { scale, shape })
        } else {
            Err(ParamError("Pareto scale and shape must be finite and > 0"))
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (1.0 - unit_f64(rng)).powf(-1.0 / self.shape)
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A new normal distribution; `std_dev` must be finite and >= 0.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0 {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal std_dev must be finite and >= 0"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller.
        let u1 = (1.0 - unit_f64(rng)).max(f64::MIN_POSITIVE);
        let u2 = unit_f64(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn exp_mean_close() {
        let exp = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let p = Pareto::new(3.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Pareto::new(-1.0, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
