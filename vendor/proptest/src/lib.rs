//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`collection::btree_set`], [`option::of`],
//! [`sample::Index`], [`Just`], `bool::ANY`, [`ProptestConfig`], and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`] macros (the
//! latter choosing uniformly — no weights). Cases are generated deterministically from a seed derived
//! from the test name, so failures reproduce; there is **no shrinking**
//! — a failing case asserts directly with its generated inputs.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---- deterministic RNG ---------------------------------------------------

/// The deterministic generator driving every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of a string — stable per-test seeds for [`proptest!`].
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---- config --------------------------------------------------------------

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

// ---- Strategy ------------------------------------------------------------

/// A recipe producing random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A uniform choice between boxed alternatives — see [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A strategy choosing uniformly among `arms` per generated value.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.arms.len());
        self.arms[ix].generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitive strategies ------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

// ---- any / Arbitrary -----------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- modules mirroring proptest's layout ---------------------------------

/// Boolean strategies.
pub mod bool {
    /// The strategy yielding arbitrary booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Generate arbitrary booleans.
    pub const ANY: BoolAny = BoolAny;

    impl super::Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification: exact or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty vec size range");
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `BTreeSet`s of `element` values with *up to* the
    /// requested number of elements (duplicate draws coalesce, exactly
    /// as in upstream proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.lo < self.size.hi, "empty set size range");
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy yielding `None` for a quarter of cases and `Some` of
    /// the inner strategy's value for the rest.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An index into a runtime-sized collection: generated as raw
    /// entropy, projected with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `[0, size)`; `size` must be nonzero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl super::Arbitrary for Index {
        fn arbitrary(rng: &mut super::TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The usual imports for proptest-based tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---- macros --------------------------------------------------------------

/// A strategy choosing uniformly among its arms (no `weight =>`
/// support). Arms may be different strategy types for one value type;
/// each is boxed behind `dyn Strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(std::boxed::Box::new($arm)
                as std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Assert inside a proptest case (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Define deterministic property tests: each `fn name(x in strategy)`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_composes(
            t in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(any::<u16>(), n)
                    .prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(t.0, t.1.len());
        }
    }

    #[test]
    fn index_projects() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..100 {
            let ix = <crate::sample::Index as crate::Arbitrary>::arbitrary(&mut rng);
            assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = (1u32..100, crate::collection::vec(any::<u8>(), 0..10));
        let a: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut crate::TestRng::from_seed(i)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut crate::TestRng::from_seed(i)))
            .collect();
        assert_eq!(a, b);
    }

    use crate::Strategy;
}
