//! The serialized value tree.

/// A self-describing serialized value (the JSON data model, plus
/// distinct signed/unsigned integers).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion-ordered, keys usually `Value::Str`.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "signed integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map entry by string key.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.as_map()?.iter().find_map(|(k, v)| match k {
            Value::Str(s) if s == name => Some(v),
            _ => None,
        })
    }
}
