//! `Serialize`/`Deserialize` implementations for std types.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::net::Ipv4Addr;

// ---- integers ------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // Integer map keys arrive as JSON object keys (strings).
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::expected("unsigned integer", v))?,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::expected("signed integer", v))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::expected("signed integer", v))?,
                    _ => return Err(DeError::expected("signed integer", v)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, isize);

// ---- floats, bool, strings ----------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("IPv4 address", v))?;
        s.parse()
            .map_err(|_| DeError::custom(format!("invalid IPv4 address `{s}`")))
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
                if s.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got array of {}", $len, s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) with 5;
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5) with 6;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
