//! Vendored offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor-based streaming model, this crate
//! uses a simple **value tree**: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] rebuilds the type from one. The companion
//! `serde_json` vendor crate converts between [`Value`] and JSON text.
//! The derive macros (`#[derive(Serialize, Deserialize)]`, re-exported
//! from the vendored `serde_derive`) understand the attribute subset the
//! workspace uses: `#[serde(transparent)]`, `#[serde(skip)]`, and
//! `#[serde(try_from = "String", into = "String")]`.
//!
//! Representation choices mirror serde_json's defaults so persisted
//! artifacts look conventional: structs are maps keyed by field name,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are externally tagged single-entry maps.
// Vendored stand-in: exempt from workspace lint policy.
#![allow(clippy::all)]


mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// An error for a missing struct field.
    pub fn missing_field(name: &str) -> DeError {
        DeError {
            msg: format!("missing field `{name}`"),
        }
    }

    /// An error for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError {
            msg: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
