//! Kill-and-resume chaos suite (ISSUE acceptance): a `run_month`
//! interrupted mid-horizon through the checkpoint hook and resumed from
//! the on-disk checkpoint produces a **bitwise-identical** `MonthResult`
//! and normalized `RunReport`; a corrupted newest checkpoint is skipped
//! in favour of its predecessor with obs-visible corruption and
//! fallback events, and the run still converges to the same answer.
//!
//! Each simulated process gets its own metrics registry and event
//! buffer (`with_metrics` / `with_subscriber`), mirroring the real
//! crash-then-restart topology where nothing but the checkpoint file
//! survives.

use quicksand_bgp::mrt;
use quicksand_core::scenario::{MonthResult, Scenario, ScenarioConfig};
use quicksand_net::QuicksandError;
use quicksand_obs::{self as obs, Key, MemorySubscriber, Registry, RunReport};
use quicksand_recover::{CheckpointStore, HookAction, DEFAULT_RETAIN};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A fresh scratch directory for one test's checkpoints.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "quicksand-recover-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// MRT-encode an update log: the byte-level identity used to assert
/// "bitwise identical" rather than merely `PartialEq`.
fn log_bytes(log: &quicksand_bgp::UpdateLog) -> Vec<u8> {
    let mut bytes = Vec::new();
    mrt::write_log(log, &mut bytes).expect("writing to a Vec cannot fail");
    bytes
}

fn assert_months_bitwise_identical(a: &MonthResult, b: &MonthResult) {
    assert_eq!(log_bytes(&a.raw), log_bytes(&b.raw), "raw logs differ");
    assert_eq!(
        log_bytes(&a.cleaned),
        log_bytes(&b.cleaned),
        "cleaned logs differ"
    );
    assert_eq!(a.removed_duplicates, b.removed_duplicates);
    assert_eq!(a.reset_bursts, b.reset_bursts);
    assert_eq!(a.horizon_end, b.horizon_end);
}

/// Run the uninterrupted baseline in its own registry, returning the
/// month and the assembled run report.
fn run_baseline(scenario: &Scenario) -> (MonthResult, RunReport) {
    let registry = Arc::new(Registry::new());
    let events = Arc::new(MemorySubscriber::new());
    let month = obs::with_metrics(registry.clone(), || {
        obs::with_subscriber(events.clone(), || {
            scenario.run_month().expect("valid scenario config")
        })
    });
    let report = RunReport::assemble("kill-resume", &registry.snapshot(), &events.events());
    (month, report)
}

/// Simulate the crashing process: checkpoint every `every` events into
/// `store`, stop after `saves` checkpoints, and die with
/// `QuicksandError::Interrupted`.
fn run_interrupted(scenario: &Scenario, store: &CheckpointStore, every: u64, saves: u64) {
    let registry = Arc::new(Registry::new());
    let mut done = 0u64;
    let err = obs::with_metrics(registry, || {
        scenario
            .run_month_checkpointed(None, every, |snap| {
                store.save(snap).expect("checkpoint save");
                done += 1;
                if done >= saves {
                    HookAction::Stop
                } else {
                    HookAction::Continue
                }
            })
            .expect_err("hook requested a stop")
    });
    assert!(
        matches!(err, QuicksandError::Interrupted { events_done } if events_done == every * saves),
        "unexpected interruption shape: {err}"
    );
}

/// Simulate the restarted process: load the newest valid checkpoint and
/// run to completion in a fresh registry.
fn run_resumed(
    scenario: &Scenario,
    dir: &Path,
) -> (MonthResult, RunReport, Arc<Registry>, Vec<obs::Event>) {
    let registry = Arc::new(Registry::new());
    let events = Arc::new(MemorySubscriber::new());
    let month = obs::with_metrics(registry.clone(), || {
        obs::with_subscriber(events.clone(), || {
            let store = CheckpointStore::open(dir, DEFAULT_RETAIN)
                .expect("scratch dir is writable");
            let (snap, _path) = store
                .load_latest()
                .expect("checkpoint listing readable")
                .expect("at least one valid checkpoint on disk");
            scenario
                .run_month_checkpointed(Some(&snap), 0, |_| HookAction::Continue)
                .expect("resume from a matching checkpoint")
        })
    });
    let report = RunReport::assemble("kill-resume", &registry.snapshot(), &events.events());
    let evs = events.events();
    (month, report, registry, evs)
}

/// The tentpole guarantee, end to end through the on-disk store: kill at
/// a checkpoint boundary, restart from disk, and nothing in the final
/// month or the normalized run report can tell the runs apart.
#[test]
fn kill_and_resume_is_bitwise_identical() {
    let scenario = Scenario::build(ScenarioConfig::small(11));
    let (full_month, full_report) = run_baseline(&scenario);

    let dir = scratch_dir("kill-resume");
    let store = CheckpointStore::open(dir.clone(), DEFAULT_RETAIN).expect("scratch dir");
    run_interrupted(&scenario, &store, 40, 2);

    let (resumed_month, resumed_report, _, _) = run_resumed(&scenario, &dir);
    assert_months_bitwise_identical(&full_month, &resumed_month);

    // The deterministic projection is empty AND the serialized
    // normalized reports are byte-for-byte equal.
    let deltas = full_report.deterministic_deltas(&resumed_report);
    assert!(deltas.is_empty(), "deterministic deltas: {deltas:#?}");
    let full_json = serde_json::to_string(&full_report.normalized()).unwrap();
    let resumed_json = serde_json::to_string(&resumed_report.normalized()).unwrap();
    assert_eq!(full_json, resumed_json, "normalized run reports differ");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption chaos: flip one byte in the newest checkpoint. The load
/// skips it with an obs-visible `checkpoint-corrupt` warning, falls back
/// to the predecessor (`checkpoint-fallback` + counters), and the
/// resumed run still reproduces the uninterrupted month exactly.
#[test]
fn corrupt_newest_checkpoint_falls_back_and_still_resumes_exactly() {
    let scenario = Scenario::build(ScenarioConfig::small(11));
    let (full_month, _) = run_baseline(&scenario);

    let dir = scratch_dir("corrupt-fallback");
    let store = CheckpointStore::open(dir.clone(), DEFAULT_RETAIN).expect("scratch dir");
    run_interrupted(&scenario, &store, 40, 2);

    // Corrupt the newest checkpoint (cursor 80) mid-file.
    let files = store.list().expect("listable");
    assert_eq!(files.len(), 2, "expected two checkpoints, got {files:?}");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(newest, &bytes).unwrap();

    let (resumed_month, _, registry, events) = run_resumed(&scenario, &dir);
    assert_months_bitwise_identical(&full_month, &resumed_month);

    // The fallback is observable: one corrupt load, one fallback, and
    // the warn events that name the files involved.
    assert_eq!(registry.counter_value(Key::stage("recover", "load_corrupt")), 1);
    assert_eq!(registry.counter_value(Key::stage("recover", "fallbacks")), 1);
    assert_eq!(registry.counter_value(Key::stage("recover", "resumes")), 1);
    assert!(
        events
            .iter()
            .any(|e| e.stage == "recover" && e.name == "checkpoint-corrupt"),
        "no checkpoint-corrupt event emitted"
    );
    assert!(
        events
            .iter()
            .any(|e| e.stage == "recover" && e.name == "checkpoint-fallback"),
        "no checkpoint-fallback event emitted"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against the wrong scenario is refused with the typed
/// mismatch error, not silently-wrong state — the operator-error guard
/// at the CLI boundary (`repro --resume-from`).
#[test]
fn resume_against_other_scenario_is_a_typed_error() {
    let scenario = Scenario::build(ScenarioConfig::small(11));
    let dir = scratch_dir("wrong-config");
    let store = CheckpointStore::open(dir.clone(), DEFAULT_RETAIN).expect("scratch dir");
    run_interrupted(&scenario, &store, 40, 1);

    let (snap, _) = store.load_latest().unwrap().expect("checkpoint present");
    let other = Scenario::build(ScenarioConfig::small(12));
    let err = other
        .run_month_checkpointed(Some(&snap), 0, |_| HookAction::Continue)
        .expect_err("config mismatch must be refused");
    assert!(
        matches!(err, QuicksandError::ResumeMismatch { what: "config_hash", .. }),
        "unexpected error: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
