//! Cross-validation of the workspace's two BGP engines and the static
//! multi-origin computation: on identical inputs they must agree
//! exactly, which is what justifies using the fast engine for the
//! month-scale experiments (DESIGN.md §3).

use quicksand_attack::{MultiOriginRouting, OriginSpec};
use quicksand_bgp::{ChurnConfig, ChurnGenerator, EventSim, FastConverge, LinkChange, Route, SimConfig};
use quicksand_net::{Asn, Ipv4Prefix, SimDuration};
use quicksand_topology::{RoutingTree, TopologyConfig, TopologyGenerator};
use rand::prelude::*;
use rand::rngs::StdRng;

fn prefix() -> Ipv4Prefix {
    "203.0.113.0/24".parse().unwrap()
}

/// Message-level convergence equals static Gao–Rexford routing for
/// every AS and several destinations on a generated topology.
#[test]
fn event_sim_converges_to_routing_tree() {
    let t = TopologyGenerator::new(TopologyConfig::small(101)).generate();
    let asns: Vec<Asn> = t.graph.asns().collect();
    for &dest in asns.iter().step_by(asns.len() / 5) {
        let mut sim = EventSim::new(&t.graph, SimConfig::default());
        sim.originate(dest, Route::originate(prefix(), dest), None);
        sim.run_to_quiescence();
        let tree = RoutingTree::compute(&t.graph, dest).unwrap();
        for &src in &asns {
            assert_eq!(
                sim.path_at(src, &prefix()),
                tree.as_path_at(&t.graph, src),
                "divergence at {src} → {dest}"
            );
        }
    }
}

/// After a random sequence of link failures and recoveries, the
/// incremental FastConverge trees equal a from-scratch recompute, and
/// the message-level simulator agrees with both.
#[test]
fn fast_converge_equals_event_sim_after_churn() {
    let t = TopologyGenerator::new(TopologyConfig::small(202)).generate();
    let asns: Vec<Asn> = t.graph.asns().collect();
    let dest = asns[asns.len() / 3];

    // Collect candidate links (avoid isolating the destination: skip
    // its access links).
    let mut links = Vec::new();
    for i in 0..t.graph.len() {
        let a = t.graph.asn_of(i);
        for &(j, _) in t.graph.neighbors_idx(i) {
            let b = t.graph.asn_of(j);
            if a < b && a != dest && b != dest {
                links.push((a, b));
            }
        }
    }

    let mut fc = FastConverge::new(t.graph.clone(), [dest]);
    let mut sim = EventSim::new(&t.graph, SimConfig::default());
    sim.originate(dest, Route::originate(prefix(), dest), None);
    sim.run_to_quiescence();

    let mut rng = StdRng::seed_from_u64(77);
    let mut down: Vec<(Asn, Asn)> = Vec::new();
    for step in 0..25 {
        // Flip a random link (down if up, up if down).
        let (a, b) = if !down.is_empty() && rng.gen_bool(0.4) {
            down.remove(rng.gen_range(0..down.len()))
        } else {
            links[rng.gen_range(0..links.len())]
        };
        let is_down = fc.graph().relationship(a, b).is_none();
        if is_down {
            fc.apply(LinkChange::up(a, b));
            sim.link_up(a, b);
        } else {
            fc.apply(LinkChange::down(a, b));
            sim.link_down(a, b);
            down.push((a, b));
        }
        sim.run_to_quiescence();

        // All three views agree.
        let fresh = RoutingTree::compute(fc.graph(), dest).unwrap();
        for &src in asns.iter().step_by(3) {
            let want = fresh.as_path_at(fc.graph(), src);
            assert_eq!(
                fc.tree(dest).unwrap().as_path_at(fc.graph(), src),
                want,
                "fastconverge diverged at {src} (step {step})"
            );
            assert_eq!(
                sim.path_at(src, &prefix()),
                want,
                "eventsim diverged at {src} (step {step})"
            );
        }
    }
}

/// The engines agree *under generated churn*: the exact event sequence
/// the month replay would play (a `ChurnGenerator` schedule, not
/// hand-picked flips) drives both `FastConverge` and the message-level
/// `EventSim`, and after every event all stable paths for several
/// tracked origins are identical. This is the oracle that lets the
/// parallel replay engine treat `FastConverge` as ground truth.
#[test]
fn fast_converge_equals_event_sim_under_generated_churn() {
    let t = TopologyGenerator::new(TopologyConfig::small(505)).generate();
    let asns: Vec<Asn> = t.graph.asns().collect();
    // A few tracked origins spread across the AS space, like the month
    // replay's mix of Tor-hosting and control origins.
    let origins: Vec<Asn> = asns.iter().copied().step_by(asns.len() / 3).take(3).collect();
    let pfx = |i: usize| -> Ipv4Prefix {
        format!("198.{}.0.0/16", 51 + i).parse().unwrap()
    };

    let mut events = ChurnGenerator::new(ChurnConfig {
        horizon: SimDuration::from_days(2),
        seed: 1717,
        ..Default::default()
    })
    .generate(&t.graph, &t.hosting);
    assert!(events.len() > 40, "churn schedule unexpectedly sparse");
    // The full schedule would make quiescence-per-event slow; a prefix
    // of it still exercises downs, recoveries, and overlapping outages.
    events.truncate(40);

    let mut fc = FastConverge::new(t.graph.clone(), origins.iter().copied());
    let mut sim = EventSim::new(&t.graph, SimConfig::default());
    for (i, &o) in origins.iter().enumerate() {
        sim.originate(o, Route::originate(pfx(i), o), None);
    }
    sim.run_to_quiescence();

    for (step, ev) in events.iter().enumerate() {
        fc.apply(ev.change);
        if ev.change.up {
            sim.link_up(ev.change.a, ev.change.b);
        } else {
            sim.link_down(ev.change.a, ev.change.b);
        }
        sim.run_to_quiescence();
        for (i, &o) in origins.iter().enumerate() {
            for &src in asns.iter().step_by(7) {
                assert_eq!(
                    fc.tree(o).unwrap().as_path_at(fc.graph(), src),
                    sim.path_at(src, &pfx(i)),
                    "engines diverged at {src} → {o} (event {step}, {:?})",
                    ev.change
                );
            }
        }
    }
}

/// Cross-validation at Internet scale: on the `large` tier's 20k-AS
/// regional topology, the incremental `FastConverge` trees must equal a
/// from-scratch `RoutingTree` recompute after every generated churn
/// event, and the message-level `EventSim` must agree with the static
/// tree at initial convergence. (Per-event message-level quiescence at
/// 20k ASes is what the fast engine exists to avoid, so the event-sim
/// leg checks the converged state once.) `#[ignore]` by default and
/// gated on `QUICKSAND_TEST_LARGE=1`, like the parallel-equivalence
/// large gate.
#[test]
#[ignore = "large tier: minutes of CPU; QUICKSAND_TEST_LARGE=1 cargo test -- --ignored"]
fn large_tier_engines_agree_under_generated_churn() {
    if std::env::var("QUICKSAND_TEST_LARGE").as_deref() != Ok("1") {
        eprintln!("skipped: set QUICKSAND_TEST_LARGE=1 to run the large cross-validation");
        return;
    }
    let t = TopologyGenerator::new(TopologyConfig::internet(20_000, 0xD1FF)).generate();
    assert!(t.graph.len() >= 20_000);
    let asns: Vec<Asn> = t.graph.asns().collect();
    let origins: Vec<Asn> =
        asns.iter().copied().step_by(asns.len() / 3).take(3).collect();
    let pfx = |i: usize| -> Ipv4Prefix {
        format!("198.{}.0.0/16", 51 + i).parse().unwrap()
    };

    // Message-level leg: initial convergence for one origin equals the
    // static Gao-Rexford tree at every sampled AS.
    let mut sim = EventSim::new(&t.graph, SimConfig::default());
    sim.originate(origins[0], Route::originate(pfx(0), origins[0]), None);
    sim.run_to_quiescence();
    let tree = RoutingTree::compute(&t.graph, origins[0]).unwrap();
    for &src in asns.iter().step_by(97) {
        assert_eq!(
            sim.path_at(src, &pfx(0)),
            tree.as_path_at(&t.graph, src),
            "event sim diverged from static tree at {src}"
        );
    }
    drop(sim);

    // Incremental leg: FastConverge vs from-scratch recompute across a
    // generated churn schedule.
    let mut events = ChurnGenerator::new(ChurnConfig {
        horizon: SimDuration::from_days(1),
        seed: 1717,
        ..Default::default()
    })
    .generate(&t.graph, &t.hosting);
    assert!(events.len() > 60, "churn schedule unexpectedly sparse");
    events.truncate(60);
    let mut fc = FastConverge::new(t.graph.clone(), origins.iter().copied());
    for (step, ev) in events.iter().enumerate() {
        fc.apply(ev.change);
        for &o in &origins {
            let fresh = RoutingTree::compute(fc.graph(), o).unwrap();
            for &src in asns.iter().step_by(157) {
                assert_eq!(
                    fc.tree(o).unwrap().as_path_at(fc.graph(), src),
                    fresh.as_path_at(fc.graph(), src),
                    "fastconverge diverged at {src} → {o} (event {step}, {:?})",
                    ev.change
                );
            }
        }
    }
}

/// The static multi-origin split equals what the message-level
/// simulator converges to under a hijack.
#[test]
fn multi_origin_split_matches_event_sim_hijack() {
    let t = TopologyGenerator::new(TopologyConfig::small(303)).generate();
    let asns: Vec<Asn> = t.graph.asns().collect();
    let victim = asns[asns.len() - 1];
    let attacker = asns[asns.len() / 2];
    assert_ne!(victim, attacker);

    let mut sim = EventSim::new(&t.graph, SimConfig::default());
    sim.originate(victim, Route::originate(prefix(), victim), None);
    sim.run_to_quiescence();
    sim.originate(attacker, Route::originate(prefix(), attacker), None);
    sim.run_to_quiescence();

    let split = MultiOriginRouting::compute(
        &t.graph,
        &[OriginSpec::plain(victim), OriginSpec::plain(attacker)],
    );
    for &a in &asns {
        assert_eq!(
            sim.selected_origin(a, &prefix()),
            split.selected_origin(&t.graph, a),
            "origin split diverged at {a}"
        );
    }
}

/// Selective announcement (the interception trick) agrees between the
/// static computation and the message-level simulator.
#[test]
fn scoped_announcement_matches_event_sim() {
    let t = TopologyGenerator::new(TopologyConfig::small(404)).generate();
    let asns: Vec<Asn> = t.graph.asns().collect();
    // Pick a multihomed origin and withhold one provider.
    let origin = *asns
        .iter()
        .find(|a| t.graph.providers(**a).count() >= 2)
        .expect("multihomed AS exists");
    let providers: Vec<Asn> = t.graph.providers(origin).collect();
    let withheld = providers[0];
    let announce_to: Vec<Asn> = t
        .graph
        .providers(origin)
        .chain(t.graph.peers(origin))
        .chain(t.graph.customers(origin))
        .filter(|&n| n != withheld)
        .collect();

    let mut sim = EventSim::new(&t.graph, SimConfig::default());
    sim.originate(
        origin,
        Route::originate(prefix(), origin),
        Some(&announce_to),
    );
    sim.run_to_quiescence();

    let split = MultiOriginRouting::compute(
        &t.graph,
        &[OriginSpec::only_to(origin, &announce_to)],
    );
    for &a in &asns {
        assert_eq!(
            sim.path_at(a, &prefix()),
            split.as_path_at(&t.graph, a),
            "scoped announcement diverged at {a}"
        );
    }
}
