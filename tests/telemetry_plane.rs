//! Telemetry-plane integration (DESIGN.md §13): the JSONL sink stays
//! line-atomic when every worker-pool thread emits through it at once,
//! across the same `--jobs` widths the replay engine uses.
//!
//! The worker pool re-installs the constructing thread's subscriber on
//! each pool thread, so a single [`JsonlSubscriber`] receives genuinely
//! concurrent `emit` calls — exactly the situation where a torn write
//! would interleave two JSON objects on one line.

use quicksand_core::parallel::WorkerPool;
use quicksand_obs::{self as obs, Event, JsonlSubscriber, Level};
use std::collections::BTreeSet;
use std::sync::Arc;

const EVENTS_PER_TASK: u64 = 200;

#[test]
fn jsonl_lines_stay_atomic_under_concurrent_worker_emits() {
    let dir = std::env::temp_dir().join(format!(
        "qs-jsonl-atomic-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();

    for &jobs in &[2usize, 4, 8] {
        let path = dir.join(format!("events-{jobs}.jsonl"));
        // More tasks than slots, so slots are reused and threads run
        // long enough to overlap.
        let n_tasks = jobs as u64 * 3 + 1;
        let jsonl: Arc<dyn obs::Subscriber> =
            Arc::new(JsonlSubscriber::create(&path).unwrap());
        obs::with_subscriber(jsonl, || {
            // Construct the pool *inside* the override: it captures the
            // calling thread's subscriber for its workers.
            let pool = WorkerPool::new(jobs);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n_tasks)
                .map(|t| {
                    Box::new(move || {
                        for k in 0..EVENTS_PER_TASK {
                            // A long message makes a torn write far
                            // more likely to straddle buffer flushes.
                            obs::emit(
                                Event::new(
                                    Level::Info,
                                    "parallel",
                                    "burst",
                                    format!(
                                        "task {t} event {k} {}",
                                        "x".repeat(96)
                                    ),
                                )
                                .with("task", t)
                                .with("k", k),
                            );
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_region(tasks);
            obs::flush();
        });

        let text = std::fs::read_to_string(&path).unwrap();
        let mut bursts: BTreeSet<(u64, u64)> = BTreeSet::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // Every line is one standalone JSON object — a torn or
            // interleaved write fails right here.
            let v: serde::Value = serde_json::from_str(line).unwrap_or_else(|e| {
                panic!("jobs={jobs}: torn JSONL line {line:?}: {e}")
            });
            if v.field("name").and_then(|n| n.as_str()) == Some("burst") {
                let fields = v.field("fields").expect("events carry a fields map");
                let num = |key: &str| match fields.field(key) {
                    Some(serde::Value::U64(n)) => *n,
                    Some(serde::Value::I64(n)) => *n as u64,
                    other => panic!("jobs={jobs}: bad {key} field: {other:?}"),
                };
                assert!(
                    bursts.insert((num("task"), num("k"))),
                    "jobs={jobs}: duplicate burst event"
                );
            }
        }
        assert_eq!(
            bursts.len() as u64,
            n_tasks * EVENTS_PER_TASK,
            "jobs={jobs}: lost events in the JSONL stream"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
