//! Chaos suite: the collector → cleaning → monitor pipeline under
//! injected faults (ISSUE acceptance: no panics across the intensity
//! sweep, detection survives ≤20% drops with two simultaneous session
//! flaps, and every fault decision is deterministic under a fixed
//! seed).
//!
//! The synthetic world: `N_SESSIONS` collector sessions watching
//! `N_PREFIXES` prefixes over `HORIZON_DAYS` days. Benign churn flips
//! each prefix between two known upstreams every two hours (teaching
//! the monitor both during warmup); at `attack_at` half the prefixes
//! are hijacked with a bogus origin, visible on every session with a
//! small per-session stagger. Recall = fraction of hijacked prefixes
//! whose origin change raises an alarm; latency = mean time from
//! `attack_at` to the first such alarm.

use quicksand_attack::detect::AlarmKind;
use quicksand_attack::monitord::{MonitorConfig, StreamingMonitor};
use quicksand_bgp::fault::{FaultInjector, FaultProfile, FaultReport};
use quicksand_bgp::{
    clean_session_resets, metrics, CleaningConfig, Route, SessionId, UpdateLog,
    UpdateMessage, UpdateRecord,
};
use quicksand_core::scenario::{Scenario, ScenarioConfig};
use quicksand_net::{Asn, AsPath, Ipv4Prefix, QuicksandError, SimDuration, SimTime};

const N_SESSIONS: u32 = 8;
const N_PREFIXES: u32 = 6;
const HORIZON_DAYS: u64 = 5;
const ATTACK_DAY: u64 = 4;
const ATTACKER: Asn = Asn(666);

fn prefix(i: u32) -> Ipv4Prefix {
    format!("10.{i}.0.0/16").parse().unwrap()
}

fn origin(i: u32) -> Asn {
    Asn(100 + i)
}

fn attack_at() -> SimTime {
    SimTime::ZERO + SimDuration::from_days(ATTACK_DAY)
}

fn horizon_end() -> SimTime {
    SimTime::ZERO + SimDuration::from_days(HORIZON_DAYS)
}

fn attacked(i: u32) -> bool {
    i % 2 == 0
}

fn announce(at: SimTime, session: u32, pfx: u32, upstream: Asn, orig: Asn) -> UpdateRecord {
    let path: AsPath = [Asn(1000 + session), upstream, orig].into_iter().collect();
    UpdateRecord {
        at,
        session: SessionId(session),
        msg: UpdateMessage::Announce(Route {
            prefix: prefix(pfx),
            as_path: path,
            communities: Default::default(),
        }),
    }
}

/// The pristine feed: initial dump, two-hourly upstream flips, and the
/// staggered hijack burst at `attack_at` on the attacked prefixes.
fn synth_log() -> UpdateLog {
    let mut records = Vec::new();
    let upstreams = [Asn(10), Asn(11)];
    let flip = SimDuration::from_hours(2);
    let mut at = SimTime::ZERO;
    let mut parity = 0usize;
    while at <= horizon_end() {
        for s in 0..N_SESSIONS {
            for p in 0..N_PREFIXES {
                // Stagger sessions by a few seconds so records are not
                // all simultaneous.
                records.push(announce(
                    at + SimDuration::from_secs(3 * u64::from(s)),
                    s,
                    p,
                    upstreams[parity],
                    origin(p),
                ));
            }
        }
        parity ^= 1;
        at += flip;
    }
    for s in 0..N_SESSIONS {
        for p in (0..N_PREFIXES).filter(|&p| attacked(p)) {
            records.push(announce(
                attack_at() + SimDuration::from_secs(30 * u64::from(s)),
                s,
                p,
                Asn(50),
                ATTACKER,
            ));
        }
    }
    records.sort_by_key(|r| (r.at, r.session));
    UpdateLog { records }
}

struct ChaosOutcome {
    recall: f64,
    mean_latency: Option<SimDuration>,
    monitor: StreamingMonitor,
    report: FaultReport,
    cleaned: UpdateLog,
    /// Result of [`StreamingMonitor::check_feed`] taken mid-stream at
    /// the probe time (a post-hoc check would see end-of-stream
    /// `last_seen` state and never report staleness in the past).
    probe_result: Option<quicksand_net::QsResult<()>>,
}

/// Degrade the pristine feed with `profile`, clean it as §4 does, and
/// stream it through the monitor. If `probe` is set, snapshot the feed
/// health the moment the stream reaches that time.
fn run_pipeline_probed(profile: FaultProfile, probe: Option<SimTime>) -> ChaosOutcome {
    let base = synth_log();
    let injector = FaultInjector::new(profile).expect("valid chaos profile");
    let (faulted, report) = injector.apply(&base);
    let (cleaned, _, _) = clean_session_resets(&faulted, &CleaningConfig::default());

    let mut monitor = StreamingMonitor::new(
        (0..N_PREFIXES).map(|p| (prefix(p), origin(p))),
        MonitorConfig::default(),
    );
    monitor.register_sessions((0..N_SESSIONS).map(SessionId));
    let mut probe_result = None;
    for rec in &cleaned.records {
        if let Some(at) = probe {
            if probe_result.is_none() && rec.at >= at {
                probe_result = Some(monitor.check_feed(at));
            }
        }
        monitor.ingest(rec);
    }

    let latencies: Vec<SimDuration> = (0..N_PREFIXES)
        .filter(|&p| attacked(p))
        .filter_map(|p| monitor.detection_latency(&prefix(p), attack_at()))
        .collect();
    let n_attacked = (0..N_PREFIXES).filter(|&p| attacked(p)).count();
    let recall = latencies.len() as f64 / n_attacked as f64;
    let mean_latency = (!latencies.is_empty()).then(|| {
        SimDuration::from_secs_f64(
            latencies.iter().map(|d| d.as_secs_f64()).sum::<f64>() / latencies.len() as f64,
        )
    });
    ChaosOutcome {
        recall,
        mean_latency,
        monitor,
        report,
        cleaned,
        probe_result,
    }
}

fn run_pipeline(profile: FaultProfile) -> ChaosOutcome {
    run_pipeline_probed(profile, None)
}

/// Seeds for the seed-parameterized tests below. `QUICKSAND_TEST_SEEDS`
/// (a comma-separated list, decimal or `0x`-hex) overrides `default`,
/// so a nightly CI job can widen the sweep without code edits; unset or
/// empty, the defaults keep the suite byte-for-byte what it always was.
fn env_seeds(default: &[u64]) -> Vec<u64> {
    match std::env::var("QUICKSAND_TEST_SEEDS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                let parsed = match tok.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => tok.parse(),
                };
                parsed.unwrap_or_else(|_| {
                    panic!("QUICKSAND_TEST_SEEDS: bad seed {tok:?}")
                })
            })
            .collect(),
        _ => default.to_vec(),
    }
}

/// Sweep fault intensity: the pipeline never panics, recall stays
/// perfect through the acceptance threshold, and recall never falls off
/// a cliff even at full intensity (8 independent sessions each carry
/// the hijack announce, so detection degrades smoothly, not abruptly).
#[test]
fn chaos_sweep_recall_and_latency_degrade_smoothly() {
    for &base_seed in &env_seeds(&[0xC4A05]) {
        sweep_at(base_seed);
    }
}

/// One intensity sweep at a given base seed (each intensity step gets
/// its own derived seed, as the original fixed-seed sweep did).
fn sweep_at(base_seed: u64) {
    let mut last_recall = None;
    for (i, &intensity) in [0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0].iter().enumerate() {
        let out = run_pipeline(FaultProfile::with_intensity(intensity, base_seed + i as u64));
        println!(
            "intensity {intensity:.2}: recall {:.2}, latency {:?}, lost {} records",
            out.recall,
            out.mean_latency,
            out.report.total_lost()
        );
        assert!(
            (0.0..=1.0).contains(&out.recall),
            "recall out of range at intensity {intensity}"
        );
        if intensity <= 0.2 {
            assert_eq!(
                out.recall, 1.0,
                "all hijacks must be caught at intensity {intensity}"
            );
            let lat = out.mean_latency.expect("detected");
            assert!(
                lat <= SimDuration::from_mins(5),
                "latency envelope blown at intensity {intensity}: {lat:?}"
            );
        } else {
            // Degradation is smooth: with 8 sessions per hijack, even
            // heavy record loss leaves most attacks visible.
            assert!(
                out.recall >= 0.5,
                "recall cliff at intensity {intensity}: {:.2}",
                out.recall
            );
        }
        // No sudden recovery either: recall is non-increasing across
        // the sweep, modulo one attacked-prefix quantum (1/3).
        if let Some(prev) = last_recall {
            assert!(
                out.recall <= prev + 1.0 / 3.0 + 1e-9,
                "recall jumped from {prev:.2} to {:.2} at intensity {intensity}",
                out.recall
            );
        }
        last_recall = Some(out.recall);
    }
}

/// The ISSUE acceptance case: 20% drops plus two sessions dark at the
/// same time across the attack window. The six remaining sessions still
/// catch every hijack, the alarms carry reduced feed confidence, and
/// the staleness check reports the dark sessions as a typed error.
#[test]
fn acceptance_twenty_pct_drops_two_simultaneous_flaps() {
    let mut profile = FaultProfile::clean(0xACCE97);
    profile.drop_rate = 0.20;
    // Two sessions flap together: dark from two hours before the attack
    // until one hour after it (past `stale_after`, so the monitor
    // notices), then re-dump on recovery.
    let dark_from = SimTime::ZERO + SimDuration::from_hours(ATTACK_DAY * 24 - 2);
    let dark_for = SimDuration::from_hours(3);
    profile.session_outages = vec![
        (SessionId(0), dark_from, dark_for),
        (SessionId(1), dark_from, dark_for),
    ];
    let out = run_pipeline_probed(profile, Some(attack_at()));

    assert_eq!(out.recall, 1.0, "hijacks missed under the acceptance profile");
    let lat = out.mean_latency.expect("detected");
    assert!(
        lat <= SimDuration::from_mins(10),
        "acceptance latency envelope blown: {lat:?}"
    );
    // Both flapped sessions re-dumped on recovery.
    assert!(out.report.redump_records > 0, "no re-dump after the flaps");

    // Alarms raised while the two sessions are dark carry degraded
    // confidence: 6 of 8 sessions live. (Alarms from the recovery
    // re-dump — which replays the hijack routes the dark peers learned
    // — come after `recovered` and regain confidence, so they are
    // excluded here.)
    let recovered = dark_from + dark_for;
    let attack_alarms: Vec<f64> = out
        .monitor
        .alarms_with_confidence()
        .filter(|(a, _)| {
            a.at >= attack_at()
                && a.at < recovered
                && matches!(a.kind, AlarmKind::OriginChange { .. })
        })
        .map(|(_, c)| c)
        .collect();
    assert!(!attack_alarms.is_empty());
    for &c in &attack_alarms {
        assert!(
            (c - 0.75).abs() < 1e-9,
            "attack alarm confidence should be 6/8, got {c}"
        );
    }
    // The staleness check names a dark session, as a typed error.
    match out.probe_result {
        Some(Err(QuicksandError::StaleFeed { session, .. })) => {
            assert!(session <= 1, "wrong session reported stale: {session}")
        }
        ref other => panic!("expected StaleFeed at the attack time, got {other:?}"),
    }
    // After recovery the feed heals: full confidence at the horizon.
    assert!(
        (out.monitor.confidence(horizon_end()) - 1.0).abs() < 1e-9,
        "confidence did not recover after the flaps"
    );
    // Session health sees the outage as lost coverage on the flapped
    // sessions only.
    let health = metrics::session_health(
        &out.cleaned,
        SimTime::ZERO,
        horizon_end(),
        SimDuration::from_hours(1),
    );
    for h in &health {
        if h.session.0 <= 1 {
            assert!(
                h.coverage < 1.0,
                "flapped session {} reports full coverage",
                h.session.0
            );
        }
    }
}

/// Every fault decision is a pure function of the seed: identical seeds
/// give byte-identical degraded logs, reports, and alarms; a different
/// seed gives a different degraded log.
#[test]
fn chaos_is_deterministic_under_fixed_seed() {
    for &seed in &env_seeds(&[42]) {
        let a = run_pipeline(FaultProfile::with_intensity(0.5, seed));
        let b = run_pipeline(FaultProfile::with_intensity(0.5, seed));
        assert_eq!(a.cleaned.records, b.cleaned.records);
        assert_eq!(a.report.dropped, b.report.dropped);
        assert_eq!(a.report.duplicated, b.report.duplicated);
        assert_eq!(a.report.reordered, b.report.reordered);
        assert_eq!(a.report.flaps, b.report.flaps);
        let alarms_a: Vec<_> = a.monitor.alarms().iter().map(|x| (x.at, x.prefix)).collect();
        let alarms_b: Vec<_> = b.monitor.alarms().iter().map(|x| (x.at, x.prefix)).collect();
        assert_eq!(alarms_a, alarms_b);

        let c = run_pipeline(FaultProfile::with_intensity(0.5, seed + 1));
        assert_ne!(
            a.cleaned.records, c.cleaned.records,
            "different seeds produced identical degraded logs (seed {seed})"
        );
    }
}

/// Full intensity plus a whole-collector outage: the pipeline still
/// completes without panicking, staleness stays a typed error, and the
/// injector refuses nonsense rates with a typed error too.
#[test]
fn extreme_intensity_never_panics() {
    let mut profile = FaultProfile::with_intensity(1.0, 0xDEAD);
    profile
        .collector_outages
        .push((SimTime::ZERO + SimDuration::from_days(2), SimDuration::from_hours(6)));
    // Mid-outage the whole feed is stale — typed, not a panic.
    let mid_outage = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_hours(5);
    let out = run_pipeline_probed(profile, Some(mid_outage));
    assert!((0.0..=1.0).contains(&out.recall));
    assert!(out.report.total_lost() > 0);
    assert!(matches!(
        out.probe_result,
        Some(Err(QuicksandError::StaleFeed { .. }))
    ));

    let mut bad = FaultProfile::clean(1);
    bad.drop_rate = 1.5;
    assert!(matches!(
        FaultInjector::new(bad),
        Err(QuicksandError::InvalidConfig { .. })
    ));
}

/// The observability layer accounts for chaos: every session flap the
/// injector reports ends in a table re-dump — one session
/// re-establishment — so it must show up in the obs registry as exactly
/// one per-session collector reconnect increment, and the assembled run
/// report must carry the same counters.
#[test]
fn obs_report_counts_every_injected_flap_as_reconnect() {
    use quicksand_obs::{self as obs, Key, MemorySubscriber, Registry, RunReport};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let registry = Arc::new(Registry::new());
    let subscriber = Arc::new(MemorySubscriber::new());
    let out = obs::with_metrics(registry.clone(), || {
        obs::with_subscriber(subscriber.clone(), || {
            run_pipeline(FaultProfile::with_intensity(0.6, 0xF1A9))
        })
    });
    assert!(
        !out.report.flaps.is_empty(),
        "intensity 0.6 must inject session flaps"
    );

    let mut flaps_by_session: BTreeMap<u32, u64> = BTreeMap::new();
    for (s, _) in &out.report.flaps {
        *flaps_by_session.entry(s.0).or_insert(0) += 1;
    }
    for (&session, &n) in &flaps_by_session {
        assert_eq!(
            registry.counter_value(Key::session("collector", "reconnects", session)),
            n,
            "session {session} reconnect count mismatch"
        );
    }
    assert_eq!(
        registry.counter_sessions_total("collector", "reconnects"),
        out.report.flaps.len() as u64,
        "total reconnects must equal injected flaps"
    );

    // The assembled run report carries the same per-session counters.
    let report = RunReport::assemble("chaos", &registry.snapshot(), &subscriber.events());
    for (&session, &n) in &flaps_by_session {
        let entry = report
            .metrics
            .counters
            .iter()
            .find(|c| {
                c.stage == "collector" && c.name == "reconnects" && c.session == Some(session)
            })
            .expect("per-session reconnect counter present in run report");
        assert_eq!(entry.value, n);
    }
}

/// Under a fixed fault seed the metric snapshot is deterministic:
/// counters, gauges, and every simulation-derived histogram repeat
/// exactly run to run (only wall-clock `wall_ms` timings may differ).
#[test]
fn obs_snapshot_is_deterministic_under_fixed_seed() {
    use quicksand_obs::{self as obs, Registry, Snapshot};
    use std::sync::Arc;

    let snap = |seed: u64| -> Snapshot {
        let reg = Arc::new(Registry::new());
        obs::with_metrics(reg.clone(), || {
            run_pipeline(FaultProfile::with_intensity(0.5, seed));
        });
        reg.snapshot()
    };
    let sim_histograms = |s: &Snapshot| -> Vec<_> {
        s.histograms
            .iter()
            .filter(|h| h.name != quicksand_obs::WALL_MS)
            .cloned()
            .collect()
    };
    for &seed in &env_seeds(&[42]) {
        let a = snap(seed);
        let b = snap(seed);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(sim_histograms(&a), sim_histograms(&b));
    }
}

/// The §4 scenario pipeline runs end to end under a fault profile: the
/// degraded month stays cleanable and the fault report accounts for
/// real losses.
#[test]
fn scenario_month_survives_fault_profile() {
    let scenario = Scenario::build(ScenarioConfig::small(3));
    let (month, report) = scenario
        .run_month_faulted(FaultProfile::with_intensity(0.3, 7))
        .expect("valid configs");
    assert!(!month.raw.is_empty());
    assert!(month.cleaned.len() <= month.raw.len());
    assert!(report.total_lost() > 0, "a 0.3-intensity profile lost nothing");
    assert!(report.dropped > 0);
    // The degraded log is still analyzable: session health over the
    // horizon reports sane coverage for every session.
    let health = metrics::session_health(
        &month.cleaned,
        SimTime::ZERO,
        month.horizon_end,
        SimDuration::from_hours(6),
    );
    assert!(!health.is_empty());
    for h in &health {
        assert!((0.0..=1.0 + 1e-9).contains(&h.coverage));
    }
}

// ---------------------------------------------------------------------------
// Crash storm: the supervised resident engine under concurrent failures
// (DESIGN.md §12). A storm hits 3 of 8 cells mid-month — panics and
// watchdog-visible stalls — and the gate is threefold: every victim
// either auto-restarts from its newest checkpoint or is quarantined,
// the 5 survivors are completely unperturbed, and every completed
// MonthResult is bitwise identical to an unsupervised serial run (no
// event lost, no event duplicated).
// ---------------------------------------------------------------------------

mod storm {
    use quicksand_bgp::{mrt, CrashKind, ReplayChaosPlan, UpdateLog};
    use quicksand_core::scenario::{MonthResult, Scenario, ScenarioConfig};
    use quicksand_core::supervise::{
        CellResult, RestartPolicy, ScenarioJob, SuperviseConfig, Supervisor, WatchdogConfig,
    };
    use quicksand_obs as obs;
    use quicksand_recover::CheckpointStore;
    use std::path::PathBuf;
    use std::sync::Arc;

    const CELLS: usize = 8;
    const VICTIMS: usize = 3;
    const EVERY: u64 = 25;
    const BASE_SEED: u64 = 900;
    const STORM_SEED: u64 = 0xBAD_5EED;
    /// Watchdog deadline. Generous on purpose: a healthy small-scenario
    /// cell beats every `EVERY` events (a few ms apart even under the
    /// contention of a parallel test run), so only the injected stall —
    /// which sleeps well past this — can trip it. A tight deadline here
    /// makes the zero-budget test flaky: one spurious trip on a loaded
    /// runner quarantines an innocent survivor.
    const DEADLINE_MS: u64 = 1_500;
    const STALL_MS: u64 = 4_000;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qs-chaos-storm-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn encode(log: &UpdateLog) -> Vec<u8> {
        let mut bytes = Vec::new();
        mrt::write_log(log, &mut bytes).expect("Vec write");
        bytes
    }

    /// Unsupervised serial baselines, one per cell seed.
    fn baselines() -> Vec<MonthResult> {
        (0..CELLS as u64)
            .map(|i| {
                Scenario::build(ScenarioConfig::small(BASE_SEED + i))
                    .run_month()
                    .expect("valid scenario")
            })
            .collect()
    }

    fn storm_config(max_restarts: u32) -> SuperviseConfig {
        SuperviseConfig {
            width: 4,
            queue_cap: CELLS,
            results_cap: 4,
            checkpoint_every: EVERY,
            retain: 3,
            restart: RestartPolicy {
                base_ms: 1,
                cap_ms: 5,
                max_restarts,
                seed: 0x5EED_BACC,
            },
            // The parent registry has no measured replay rate, so the
            // effective deadline is exactly `DEADLINE_MS`: far above a
            // healthy small-scenario checkpoint interval, far below the
            // injected stall.
            watchdog: WatchdogConfig {
                poll_ms: 25,
                deadline_ms: DEADLINE_MS,
                grace: 8.0,
            },
        }
    }

    fn submit_fleet(
        sup: &mut Supervisor,
        dir: &std::path::Path,
        plans: &[Option<ReplayChaosPlan>],
    ) {
        for (i, plan) in plans.iter().enumerate() {
            sup.submit(ScenarioJob {
                label: format!("cell-{i}"),
                config: ScenarioConfig::small(BASE_SEED + i as u64),
                store_dir: Some(dir.join(format!("cell-{i}"))),
                chaos: plan.clone(),
                feed: None,
                feed_verify: false,
            });
        }
    }

    fn postmortem_path(dir: &std::path::Path, i: usize) -> PathBuf {
        dir.join(format!("cell-{i}"))
            .join(format!("postmortem-cell{i}.jsonl"))
    }

    /// Every storm victim leaves a flight-recorder post-mortem next to
    /// its checkpoints: the per-cell ring drained at failure time plus
    /// the failure footer, one JSON event per line, every line
    /// independently parseable, the footer last.
    fn assert_postmortem(dir: &std::path::Path, i: usize) {
        let path = postmortem_path(dir, i);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("victim {i}: no post-mortem at {}: {e}", path.display())
        });
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert!(!lines.is_empty(), "victim {i}: empty post-mortem");
        let mut parsed = Vec::new();
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap_or_else(|e| {
                panic!("victim {i}: unparseable post-mortem line {line:?}: {e}")
            });
            assert!(
                v.field("event").is_some(),
                "victim {i}: post-mortem line has no event object: {line:?}"
            );
            parsed.push(v);
        }
        let footer = parsed
            .last()
            .and_then(|v| v.field("event"))
            .expect("non-empty");
        assert_eq!(
            footer.field("name").and_then(|v| v.as_str()),
            Some("postmortem"),
            "victim {i}: post-mortem does not end with the failure footer"
        );
        assert_eq!(
            footer.field("level").and_then(|v| v.as_str()),
            Some("warn"),
            "victim {i}: footer severity"
        );
    }

    #[test]
    fn crash_storm_victims_recover_and_survivors_are_unperturbed() {
        let baselines = baselines();
        // Panics for even-numbered victims, watchdog-visible stalls
        // (well past the deadline) for odd ones, each landing at a
        // cursor in [2·every, 5·every) so a checkpoint exists.
        let plans =
            ReplayChaosPlan::storm(STORM_SEED, CELLS, VICTIMS, EVERY * 2, EVERY * 5, STALL_MS);
        assert_eq!(plans.iter().flatten().count(), VICTIMS);

        let dir = tmpdir("recover");
        let registry = Arc::new(obs::Registry::new());
        let outcome = obs::with_metrics(registry.clone(), || {
            let mut sup = Supervisor::new(storm_config(3));
            submit_fleet(&mut sup, &dir, &plans);
            sup.run()
        });

        assert_eq!(outcome.cells.len(), CELLS);
        assert_eq!(outcome.shed, 0, "nothing was shed at this width");
        let mut stalls_seen = 0u64;
        for (i, cell) in outcome.cells.iter().enumerate() {
            let CellResult::Completed { month, metrics } = &cell.result else {
                panic!(
                    "cell {i} must complete under a within-budget storm: {:?}",
                    cell.result
                );
            };
            if let Some(plan) = &plans[i] {
                // Victim: crashed exactly once, restarted from the
                // newest checkpoint, and the resume was exact.
                assert_eq!(cell.restarts, 1, "cell {i}: one injected crash");
                assert_eq!(cell.failures.len(), 1);
                let crash = plan.fire(0, u64::MAX).expect("storm plans are single-shot");
                assert!(
                    cell.failures[0].cursor >= crash.at_cursor,
                    "cell {i}: the crash-cursor checkpoint was persisted first"
                );
                // The winning attempt resumed from a checkpoint rather
                // than replaying from scratch: the `recover.resumes`
                // counter travels in the cell's final registry.
                let resumes = metrics
                    .counters
                    .iter()
                    .find(|c| c.stage == "recover" && c.name == "resumes")
                    .map_or(0, |c| c.value);
                assert!(
                    resumes >= 1,
                    "cell {i} must resume from a checkpoint, not replay from scratch"
                );
                if matches!(crash.kind, CrashKind::Stall { .. }) {
                    assert!(
                        cell.watchdog_trips >= 1,
                        "cell {i}: a stalled cell is only ever reaped by the watchdog"
                    );
                    stalls_seen += 1;
                }
                assert!(cell.degraded());
                // The flight recorder caught the crash: a non-empty
                // on-disk post-mortem and the same drained telemetry
                // in the outcome, footer last.
                assert_postmortem(&dir, i);
                assert!(
                    !cell.last_telemetry.is_empty(),
                    "victim {i}: nothing drained from the flight recorder"
                );
                assert_eq!(
                    cell.last_telemetry.last().map(|e| e.name),
                    Some("postmortem"),
                    "victim {i}: drained telemetry missing the failure footer"
                );
            } else {
                // Survivor: zero fault-path activity of any kind.
                assert_eq!(cell.restarts, 0, "survivor {i} restarted");
                assert_eq!(cell.watchdog_trips, 0, "survivor {i} tripped");
                assert!(cell.failures.is_empty(), "survivor {i} recorded a failure");
                assert!(!cell.degraded());
                assert!(
                    cell.last_telemetry.is_empty(),
                    "survivor {i} drained flight-recorder telemetry"
                );
                assert!(
                    !postmortem_path(&dir, i).exists(),
                    "survivor {i} wrote a post-mortem"
                );
            }
            // The bitwise gate, victims and survivors alike: field
            // equality first for readable diffs, then the canonical
            // MRT encoding byte for byte.
            let base = &baselines[i];
            assert_eq!(month.raw, base.raw, "cell {i}: raw log diverged");
            assert_eq!(month.cleaned, base.cleaned, "cell {i}: cleaned log diverged");
            assert_eq!(month.removed_duplicates, base.removed_duplicates);
            assert_eq!(month.reset_bursts, base.reset_bursts);
            assert_eq!(month.horizon_end, base.horizon_end);
            assert_eq!(
                encode(&month.raw),
                encode(&base.raw),
                "cell {i}: supervised output is not bitwise identical"
            );
            // No checkpoint lost: the cell's store still holds a valid
            // newest snapshot a future resume could start from.
            let store = CheckpointStore::open(dir.join(format!("cell-{i}")), 3).unwrap();
            let (snapshot, _) = store
                .load_latest()
                .expect("store readable")
                .expect("at least one checkpoint per completed cell");
            assert!(snapshot.cursor > 0);
        }
        assert!(stalls_seen >= 1, "the storm mixes stalls in with panics");

        // Fleet accounting on the parent registry is consistent with
        // what we just observed cell by cell.
        let count = |name: &'static str| registry.counter_value(obs::Key::stage("supervisor", name));
        assert_eq!(count("cells"), CELLS as u64);
        assert_eq!(count("completed"), CELLS as u64);
        assert_eq!(count("quarantined"), 0);
        assert_eq!(count("restarts"), VICTIMS as u64);
        assert_eq!(count("panics") + count("stalls") + count("errors"), VICTIMS as u64);
        assert_eq!(count("shed"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same storm, zero restart budget: every victim is quarantined on
    /// its first failure, and the survivors still finish bitwise-clean.
    #[test]
    fn crash_storm_with_no_budget_quarantines_victims_only() {
        let baselines = baselines();
        let plans =
            ReplayChaosPlan::storm(STORM_SEED, CELLS, VICTIMS, EVERY * 2, EVERY * 5, STALL_MS);
        let dir = tmpdir("quarantine");
        let registry = Arc::new(obs::Registry::new());
        let outcome = obs::with_metrics(registry.clone(), || {
            let mut sup = Supervisor::new(storm_config(0));
            submit_fleet(&mut sup, &dir, &plans);
            sup.run()
        });

        assert!(outcome.any_quarantined());
        assert_eq!(outcome.quarantined(), VICTIMS);
        assert_eq!(outcome.completed(), CELLS - VICTIMS);
        for (i, cell) in outcome.cells.iter().enumerate() {
            if plans[i].is_some() {
                assert!(
                    matches!(cell.result, CellResult::Quarantined { .. }),
                    "victim {i} had no budget: {:?}",
                    cell.result
                );
                assert_eq!(cell.restarts, 0);
                assert_eq!(cell.failures.len(), 1);
                // Quarantined victims get a post-mortem too — the one
                // failed attempt's ring plus the footer.
                assert_postmortem(&dir, i);
                assert!(
                    !cell.last_telemetry.is_empty(),
                    "quarantined victim {i}: flight recorder drained nothing"
                );
            } else {
                let CellResult::Completed { month, .. } = &cell.result else {
                    panic!("survivor {i} must be untouched: {:?}", cell.result);
                };
                assert!(!cell.degraded());
                assert!(
                    !postmortem_path(&dir, i).exists(),
                    "survivor {i} wrote a post-mortem"
                );
                assert_eq!(
                    encode(&month.raw),
                    encode(&baselines[i].raw),
                    "survivor {i} perturbed by neighboring quarantines"
                );
            }
        }
        let count = |name: &'static str| registry.counter_value(obs::Key::stage("supervisor", name));
        assert_eq!(count("quarantined"), VICTIMS as u64);
        assert_eq!(count("completed"), (CELLS - VICTIMS) as u64);
        assert_eq!(count("restarts"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
