//! The full measurement pipeline at test scale, asserted against the
//! paper's qualitative claims (the "shape" contract of DESIGN.md §4).

use quicksand_core::adversary::ObservationMode;
use quicksand_core::countermeasures::{
    evaluate_guard_strategies, evaluate_monitoring, GuardStrategy,
};
use quicksand_core::experiments::{
    fig2_left, fig2_right, fig3_left, fig3_right, table1,
};
use quicksand_core::scenario::{MonthResult, Scenario, ScenarioConfig};
use quicksand_net::Asn;
use quicksand_topology::RoutingTree;
use quicksand_traffic::{CircuitFlowConfig, TcpConfig};
use std::sync::OnceLock;

fn world() -> &'static (Scenario, MonthResult) {
    static W: OnceLock<(Scenario, MonthResult)> = OnceLock::new();
    W.get_or_init(|| {
        let s = Scenario::build(ScenarioConfig::small(4242));
        let m = s.run_month().expect("valid collector config");
        (s, m)
    })
}

/// T1: the dataset marginals come out of the pipeline self-consistent
/// (the generator's numbers re-derived through the LPM join and the
/// collector logs).
#[test]
fn table1_shape() {
    let (s, m) = world();
    let t = table1(s, m);
    assert_eq!(t.n_relays, s.config.consensus.n_relays);
    // Skewed relays-per-prefix distribution like the paper's (median 1
    // at paper scale; allow 2 at the small test scale).
    assert!(t.prefix_stats.relays_per_prefix_median <= 2);
    assert!(
        t.prefix_stats.relays_per_prefix_max
            >= 3 * t.prefix_stats.relays_per_prefix_median
    );
    // Partial feeds keep per-prefix session visibility well below 100%.
    assert!(t.mean_session_visibility > 0.05);
    assert!(t.mean_session_visibility < 0.8);
    assert!(t.max_session_visibility <= 1.0);
    // At least one near-full-feed session.
    assert!(
        t.max_prefixes_per_session as f64
            >= 0.8 * t.prefix_stats.n_prefixes as f64
    );
}

/// F2L: guard/exit relays are concentrated — a handful of ASes host a
/// disproportionate share.
#[test]
fn fig2_left_shape() {
    let (s, _) = world();
    let f = fig2_left(s);
    assert!(
        f.top5_share > 0.15,
        "no concentration: top-5 share {:.3}",
        f.top5_share
    );
    // And yet the tail is long (many ASes host at least one relay).
    assert!(f.n_hosting_ases > 20);
}

/// F2R: all four segment curves are nearly identical — the asymmetric
/// observation claim.
#[test]
fn fig2_right_shape() {
    let f = fig2_right(
        &CircuitFlowConfig {
            first_hop: TcpConfig {
                transfer_bytes: 6 << 20,
                ..Default::default()
            },
            ..Default::default()
        },
        30,
    );
    assert!(
        f.min_pairwise_correlation > 0.95,
        "curves diverge: {}",
        f.min_pairwise_correlation
    );
}

/// F3L: Tor prefixes churn more than the per-session median prefix.
#[test]
fn fig3_left_shape() {
    let (s, m) = world();
    let f = fig3_left(s, m);
    assert!(
        f.fraction_above_one > 0.3,
        "Tor prefixes not churnier: {:.3}",
        f.fraction_above_one
    );
    assert!(f.max_ratio > 3.0, "no heavy tail: {}", f.max_ratio);
}

/// F3R: churn grants extra ASes a ≥5-minute look at Tor traffic. The
/// test world runs only a week of churn (the full-scale month reaches
/// the paper's ~50%-at-≥2 regime; see EXPERIMENTS.md), so assert the
/// shape at proportionally lower levels.
#[test]
fn fig3_right_shape() {
    let (s, m) = world();
    let f = fig3_right(s, m);
    assert!(
        f.ccdf.at(1.0) > 0.15,
        "too little extra exposure at ≥1: {:.3}",
        f.ccdf.at(1.0)
    );
    assert!(
        f.fraction_at_least_2 > 0.05,
        "too little extra exposure at ≥2: {:.3}",
        f.fraction_at_least_2
    );
    // Not everything explodes: the tail thins out.
    assert!(f.fraction_above_5 < f.fraction_at_least_2);
}

/// §3.3: over sampled circuits, the asymmetric predicate never shrinks
/// and sometimes strictly grows the set of deanonymizing ASes. Gains
/// are rare at test scale (routing is often symmetric under one policy
/// model), so sample broadly with cached trees.
#[test]
fn asymmetric_mode_dominates_symmetric() {
    let (s, _) = world();
    let g = &s.topo.graph;
    let stubs = &s.topo.stubs;
    let guards: Vec<Asn> = s.consensus.guards().map(|r| r.host_as).collect();
    let exits: Vec<Asn> = s.consensus.exits().map(|r| r.host_as).collect();
    let mut trees: std::collections::BTreeMap<Asn, RoutingTree> =
        std::collections::BTreeMap::new();
    let mut strictly_larger = 0usize;
    let mut circuits = 0usize;
    for i in 0..400usize {
        let client = stubs[i * 7 % stubs.len()];
        let guard = guards[i * 13 % guards.len()];
        let exit = exits[i * 17 % exits.len()];
        let dest = stubs[(i * 23 + 41) % stubs.len()];
        let distinct: std::collections::BTreeSet<Asn> =
            [client, guard, exit, dest].into_iter().collect();
        if distinct.len() < 4 {
            continue;
        }
        for a in [client, guard, exit, dest] {
            trees
                .entry(a)
                .or_insert_with(|| RoutingTree::compute(g, a).unwrap());
        }
        let obs = quicksand_core::adversary::SegmentObservers::compute(
            g,
            client,
            guard,
            exit,
            dest,
            &trees[&guard],
            &trees[&client],
            &trees[&dest],
            &trees[&exit],
        )
        .unwrap();
        let sym = obs.deanonymizing_ases(ObservationMode::SymmetricOnly);
        let asym = obs.deanonymizing_ases(ObservationMode::AnyDirection);
        assert!(sym.is_subset(&asym), "asymmetric must dominate");
        if asym.len() > sym.len() {
            strictly_larger += 1;
        }
        circuits += 1;
    }
    assert!(circuits >= 300);
    assert!(
        strictly_larger > 0,
        "asymmetry never helped across {circuits} circuits — suspicious"
    );
}

/// §5: dynamics-aware guard selection beats vanilla on the temporal
/// exposure metric, and the monitor catches injected attacks.
#[test]
fn countermeasures_shape() {
    let (s, m) = world();
    let eval = evaluate_guard_strategies(s, 5, 3, &[0.05], 9);
    let x_of = |st: GuardStrategy| {
        eval.rows
            .iter()
            .find(|(q, _, _)| *q == st)
            .map(|(_, x, _)| *x)
            .unwrap()
    };
    assert!(x_of(GuardStrategy::DynamicsAware) <= x_of(GuardStrategy::Vanilla) + 1e-9);
    let mon = evaluate_monitoring(s, m, 16, 9);
    assert_eq!(mon.hijack_score.recall(), 1.0);
    assert!(mon.splice_score.recall() > 0.4);
}

/// Determinism across the whole pipeline: identical seeds produce
/// identical logs and figures.
#[test]
fn pipeline_is_deterministic() {
    let a = Scenario::build(ScenarioConfig::small(606)).run_month().unwrap();
    let b = Scenario::build(ScenarioConfig::small(606)).run_month().unwrap();
    assert_eq!(a.raw.len(), b.raw.len());
    assert_eq!(a.cleaned.records, b.cleaned.records);
}

/// A full month's log survives the MRT-style binary round trip, and the
/// figures computed from the decoded log are identical.
#[test]
fn month_log_roundtrips_through_mrt() {
    let (s, m) = world();
    let mut buf = Vec::new();
    quicksand_bgp::mrt::write_log(&m.cleaned, &mut buf).expect("serialize");
    let back = quicksand_bgp::mrt::read_log(&mut buf.as_slice()).expect("parse");
    assert_eq!(back.records, m.cleaned.records);
    // Metrics computed on the decoded log agree exactly.
    let before = fig3_left(s, m);
    let reparsed = crate_month(back, m.horizon_end);
    let after = fig3_left(s, &reparsed);
    assert_eq!(before.ccdf.len(), after.ccdf.len());
    assert_eq!(before.fraction_above_one, after.fraction_above_one);
}

/// Helper: wrap a decoded log in a MonthResult shell for the figure
/// functions.
fn crate_month(cleaned: quicksand_bgp::UpdateLog, horizon_end: quicksand_net::SimTime) -> MonthResult {
    MonthResult {
        raw: cleaned.clone(),
        cleaned,
        removed_duplicates: 0,
        reset_bursts: 0,
        horizon_end,
    }
}
