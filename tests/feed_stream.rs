//! Streaming feed plane integration (DESIGN.md §14): a supervised cell
//! fed over loopback TCP — with a scripted mid-stream disconnect — must
//! produce a [`MonthResult`] bitwise identical to the unsupervised
//! batch replay, and a stalled peer must be reaped by the hold timer at
//! a deterministic cursor.
//!
//! These are the ISSUE acceptance gates for the feed plane: resume
//! exactness is checked three ways (structural equality, the canonical
//! MRT encoding, and the in-process `feed.identity_ok` verification the
//! cell itself performs after EOF).

use quicksand_bgp::fault::{ConnChaosPlan, ConnFaultKind};
use quicksand_bgp::feed::{ChurnFeedSource, FeedEvent, FeedMode, FeedMsg};
use quicksand_core::feed::{
    month_fnv, FeedBinding, FeedClient, FeedConfig, FeedServer, FeedSlot, ReconnectPolicy,
};
use quicksand_core::scenario::{Scenario, ScenarioConfig};
use quicksand_core::supervise::{
    CellResult, RestartPolicy, ScenarioJob, SuperviseConfig, Supervisor, WatchdogConfig,
};
use quicksand_core::telemetry::{FleetTelemetry, SessionState};
use quicksand_obs::{self as obs, Key};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Seeds for the seed-parameterized tests below; `QUICKSAND_TEST_SEEDS`
/// (comma-separated, decimal or `0x`-hex) widens the sweep in CI
/// without code edits.
fn env_seeds(default: &[u64]) -> Vec<u64> {
    match std::env::var("QUICKSAND_TEST_SEEDS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                let parsed = match tok.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => tok.parse(),
                };
                parsed.unwrap_or_else(|_| panic!("QUICKSAND_TEST_SEEDS: bad seed {tok:?}"))
            })
            .collect(),
        _ => default.to_vec(),
    }
}

/// The ingest tuning every test here uses: short hold and poll so the
/// suite runs in seconds, a restart window generous enough that a slow
/// CI machine cannot spuriously expire the graceful-restart timer.
fn feed_cfg() -> FeedConfig {
    FeedConfig {
        hold_ms: 500,
        restart_ms: 60_000,
        ack_every: 8,
        queue_cap: 64,
        poll_ms: 2,
    }
}

fn encode(log: &quicksand_bgp::UpdateLog) -> Vec<u8> {
    let mut bytes = Vec::new();
    quicksand_bgp::mrt::write_log(log, &mut bytes).expect("Vec write");
    bytes
}

/// One supervised cell ingesting its churn schedule over loopback, the
/// client killed (and resuming) mid-stream: the streamed month must be
/// bitwise identical to the unsupervised batch run, and the cell's own
/// post-EOF verification must publish `feed.identity_ok`.
#[test]
fn kill_and_reconnect_stream_is_bitwise_identical_to_batch() {
    let seed = 47;
    let config = ScenarioConfig::small(seed);
    let fingerprint = config.fingerprint();
    let baseline = Scenario::build(config.clone())
        .run_month()
        .expect("valid scenario");
    let schedule = Scenario::build(config.clone()).churn_schedule();
    let total = schedule.len() as u64;
    assert!(
        total > 20,
        "the kill point must land mid-stream ({total} events)"
    );

    let registry = Arc::new(obs::Registry::new());
    let (outcome, report) = obs::with_metrics(registry.clone(), || {
        let mut sup = Supervisor::new(SuperviseConfig {
            width: 1,
            queue_cap: 1,
            results_cap: 1,
            checkpoint_every: 50,
            retain: 2,
            restart: RestartPolicy {
                base_ms: 1,
                cap_ms: 5,
                max_restarts: 1,
                seed: 7,
            },
            watchdog: WatchdogConfig {
                poll_ms: 10,
                deadline_ms: 30_000,
                grace: 8.0,
            },
        });
        let slot = Arc::new(FeedSlot::new(feed_cfg()));
        let fleet = sup.telemetry();
        let telem = fleet.add_feed_session(Some(0), "cell-0", feed_cfg().hold_ms);
        let server = FeedServer::start(
            "127.0.0.1:0",
            feed_cfg(),
            vec![FeedBinding::new(
                "cell-0",
                FeedMode::Churn,
                fingerprint,
                slot.clone(),
                telem,
            )],
        )
        .expect("loopback bind");
        let addr = server.local_addr();
        sup.submit(ScenarioJob {
            label: "cell-0".into(),
            config,
            store_dir: None,
            chaos: None,
            feed: Some(slot),
            feed_verify: true,
        });
        // The client streams concurrently with the cell, dying after
        // the 17th event frame and reconnecting from the acked cursor.
        let client_thread = thread::spawn(move || {
            let mut client = FeedClient::new(addr, "cell-0", fingerprint);
            client.hold_ms = feed_cfg().hold_ms;
            client.reconnect = ReconnectPolicy {
                base_ms: 1,
                cap_ms: 5,
                max_attempts: 8,
                seed: 0xFEED,
            };
            client.chaos = ConnChaosPlan::single(17, ConnFaultKind::Disconnect);
            client.stream(&ChurnFeedSource::new(schedule))
        });
        let outcome = sup.run();
        let report = client_thread
            .join()
            .expect("client thread must not panic")
            .expect("stream must complete through the scripted disconnect");
        drop(server);
        (outcome, report)
    });

    assert_eq!(report.connects, 2, "one scripted kill, one reconnect");
    assert_eq!(report.faults_fired, 1);
    assert_eq!(report.acked, total);

    assert_eq!(outcome.cells.len(), 1);
    let cell = &outcome.cells[0];
    let CellResult::Completed { month, .. } = &cell.result else {
        panic!("feed-driven cell must complete: {:?}", cell.result);
    };
    assert_eq!(cell.restarts, 0, "a client kill must not restart the cell");
    assert_eq!(month.raw, baseline.raw);
    assert_eq!(month.cleaned, baseline.cleaned);
    assert_eq!(month.removed_duplicates, baseline.removed_duplicates);
    assert_eq!(month.reset_bursts, baseline.reset_bursts);
    assert_eq!(
        encode(&month.raw),
        encode(&baseline.raw),
        "streamed replay must be bitwise identical to the batch run"
    );
    assert_eq!(month_fnv(month), month_fnv(&baseline));

    // The cell's own streamed-equals-batch verification, as published
    // to the run report CI greps.
    let key = |name: &'static str| Key::stage("feed", name);
    assert_eq!(registry.counter_value(key("identity_ok")), 1);
    assert_eq!(registry.counter_value(key("identity_mismatch")), 0);
    assert_eq!(registry.counter_value(key("disconnects")), 1);
    assert_eq!(registry.counter_value(key("eof_ok")), 1);
    assert_eq!(registry.counter_value(key("dead_letters")), 0);
}

/// A peer that opens a session, streams a seed-determined prefix of its
/// schedule, then goes silent must be reaped by the hold timer at
/// exactly the accepted-event cursor — for every seed in the sweep.
#[test]
fn stalled_peer_is_reaped_at_a_deterministic_cursor_across_seeds() {
    for &seed in &env_seeds(&[3, 9]) {
        let schedule =
            Scenario::build(ScenarioConfig::small(seed)).churn_schedule();
        let sent = 2 + (seed as usize % 4).min(schedule.len().saturating_sub(1));
        let registry = Arc::new(obs::Registry::new());
        let (slot, telem, server) = obs::with_metrics(registry.clone(), || {
            let cfg = feed_cfg();
            let slot = Arc::new(FeedSlot::new(cfg.clone()));
            let fleet = FleetTelemetry::new(Arc::new(obs::Registry::new()));
            let telem = fleet.add_feed_session(None, "stall-peer", cfg.hold_ms);
            let server = FeedServer::start(
                "127.0.0.1:0",
                cfg,
                vec![FeedBinding::new(
                    "stall-peer",
                    FeedMode::Churn,
                    seed,
                    slot.clone(),
                    telem.clone(),
                )],
            )
            .expect("loopback bind");
            (slot, telem, server)
        });

        // Raw client: open with a 40ms hold (negotiated hold is the
        // minimum of both sides), stream the prefix, then stall.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        FeedMsg::Open {
            peer: "stall-peer".into(),
            mode: FeedMode::Churn,
            config_hash: seed,
            hold_ms: 40,
        }
        .to_frame()
        .unwrap()
        .write_to(&mut stream)
        .unwrap();
        for (i, ev) in schedule[..sent].iter().enumerate() {
            FeedMsg::Event {
                seq: i as u64,
                event: FeedEvent::Link(*ev),
            }
            .to_frame()
            .unwrap()
            .write_to(&mut stream)
            .unwrap();
        }

        let deadline = Instant::now() + Duration::from_secs(10);
        while telem.reaps() == 0 {
            assert!(
                Instant::now() < deadline,
                "seed {seed}: stalled peer was never reaped"
            );
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            telem.last_reap_cursor(),
            sent as u64,
            "seed {seed}: reap must land exactly at the accepted cursor"
        );
        assert_eq!(telem.state(), SessionState::Idle);
        assert_eq!(
            slot.accepted(),
            sent as u64,
            "seed {seed}: accepted prefix is retained for graceful restart"
        );
        assert_eq!(registry.counter_value(Key::stage("feed", "reaps")), 1);
        drop(server);
    }
}
