//! Differential gate for dirty-set observation (DESIGN.md §16): replay
//! the same churn schedule twice over identical collector state — once
//! with the retired full-prefix strategy (refresh every affected
//! origin, diff *every tracked prefix* of every live session, observe
//! every effective event), once with the dirty-set pipeline the engine
//! now runs (`refresh_exports_dirty` → `observe_dirty`, clean events
//! skipped) — and require byte-identical `UpdateLog`s. A diff op is
//! emitted iff a recorded entry changes iff that (session, origin)
//! export value changed, so the dirty subset must reproduce the full
//! scan record for record, reset deferral included.

use quicksand_bgp::{mrt, Collector, ExportCache, FastConverge, UpdateLog};
use quicksand_core::scenario::{Scenario, ScenarioConfig};
use quicksand_net::{Asn, Ipv4Prefix, SimDuration, SimTime};
use quicksand_obs::{self as obs, Registry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Seeds for the seed-parameterized sweep below. `QUICKSAND_TEST_SEEDS`
/// (a comma-separated list, decimal or `0x`-hex) overrides `default`,
/// so a nightly CI job can widen the sweep without code edits.
fn env_seeds(default: &[u64]) -> Vec<u64> {
    match std::env::var("QUICKSAND_TEST_SEEDS") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|tok| {
                let tok = tok.trim();
                let parsed = match tok.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => tok.parse(),
                };
                parsed.unwrap_or_else(|_| {
                    panic!("QUICKSAND_TEST_SEEDS: bad seed {tok:?}")
                })
            })
            .collect(),
        _ => default.to_vec(),
    }
}

fn log_bytes(log: &UpdateLog) -> Vec<u8> {
    let mut bytes = Vec::new();
    mrt::write_log(log, &mut bytes).expect("writing to a Vec cannot fail");
    bytes
}

fn tiny(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed);
    cfg.churn.horizon = SimDuration::from_days(3);
    cfg.collector.horizon = SimDuration::from_days(3);
    cfg.n_sessions = 8;
    cfg.n_control_origins = 30;
    cfg
}

/// Replay `s`'s schedule with either observation strategy, returning
/// the raw log. `full = true` reconstructs the pre-dirty-set engine:
/// refresh every affected origin, then diff every live session against
/// the *entire* tracked-prefix table at every effective event.
fn replay(s: &Scenario, full: bool) -> UpdateLog {
    let tracked = s.tracked_prefixes();
    let prefixes_by_origin: BTreeMap<Asn, Vec<Ipv4Prefix>> = {
        let mut m: BTreeMap<Asn, Vec<Ipv4Prefix>> = BTreeMap::new();
        for (p, o) in &tracked {
            m.entry(*o).or_default().push(*p);
        }
        m
    };
    let all_prefixes: Vec<Ipv4Prefix> = tracked.keys().copied().collect();
    let all_origin_of: Vec<Asn> = tracked.values().copied().collect();
    let all_origins: Vec<Asn> = prefixes_by_origin.keys().copied().collect();
    let prefixes_of =
        |o: Asn| prefixes_by_origin.get(&o).map_or(&[][..], |v| v.as_slice());

    let mut fc = FastConverge::new(s.topo.graph.clone(), all_origins.iter().copied());
    let mut collector =
        Collector::new(&s.session_peers, &s.config.collector).expect("valid config");
    let mut cache = ExportCache::new();
    let mut log = UpdateLog::default();
    let mut dirty: Vec<Vec<Asn>> = vec![Vec::new(); s.session_peers.len()];

    let refresh_all = |fc: &FastConverge,
                       collector: &mut Collector,
                       cache: &mut ExportCache,
                       origins: &[Asn]| {
        for &o in origins {
            let Some(tree) = fc.tree(o) else { continue };
            collector.refresh_exports(fc.graph(), tree, cache);
        }
    };

    // t = 0 full dump, identical in both strategies.
    refresh_all(&fc, &mut collector, &mut cache, &all_origins);
    collector.observe_interned(
        SimTime::ZERO,
        &all_prefixes,
        &|peer, pi| cache.get(all_origin_of[pi], peer),
        &mut log,
    );

    for ev in s.churn_schedule() {
        let affected = fc.apply(ev.change);
        if affected.is_empty() {
            continue;
        }
        if full {
            refresh_all(&fc, &mut collector, &mut cache, &affected);
            collector.observe_interned(
                ev.at,
                &all_prefixes,
                &|peer, pi| cache.get(all_origin_of[pi], peer),
                &mut log,
            );
        } else {
            for d in dirty.iter_mut() {
                d.clear();
            }
            for &o in &affected {
                let Some(tree) = fc.tree(o) else { continue };
                collector.refresh_exports_dirty(fc.graph(), tree, &mut cache, &mut dirty);
            }
            if dirty.iter().any(|d| !d.is_empty()) {
                collector.observe_dirty(
                    ev.at,
                    &dirty,
                    &prefixes_of,
                    &|peer, origin| cache.get(origin, peer),
                    &mut log,
                );
            }
        }
    }

    // Final observation flushes trailing session resets.
    refresh_all(&fc, &mut collector, &mut cache, &all_origins);
    collector.observe_interned(
        SimTime::ZERO + s.config.churn.horizon,
        &all_prefixes,
        &|peer, pi| cache.get(all_origin_of[pi], peer),
        &mut log,
    );
    log
}

/// Across the seed sweep, the dirty-set pipeline's log is byte-for-byte
/// the full-scan log.
#[test]
fn dirty_observe_matches_full_observe_bytewise() {
    for seed in env_seeds(&[0xD1FF, 7, 11]) {
        let s = Scenario::build(tiny(seed));
        let full = obs::with_metrics(Arc::new(Registry::new()), || replay(&s, true));
        let dirty = obs::with_metrics(Arc::new(Registry::new()), || replay(&s, false));
        assert_eq!(
            log_bytes(&full),
            log_bytes(&dirty),
            "dirty-set observation diverged from the full scan (seed {seed:#x})"
        );
    }
}

/// The production replay loop (`run_month`, which now runs the
/// dirty-set pipeline end to end) also matches the reconstructed full
/// scan, raw and cleaned.
#[test]
fn run_month_matches_reconstructed_full_scan() {
    for seed in env_seeds(&[0xD1FF]) {
        let s = Scenario::build(tiny(seed));
        let full = obs::with_metrics(Arc::new(Registry::new()), || replay(&s, true));
        let month = obs::with_metrics(Arc::new(Registry::new()), || {
            s.run_month().expect("valid scenario")
        });
        assert_eq!(
            log_bytes(&full),
            log_bytes(&month.raw),
            "run_month raw log diverged from the full scan (seed {seed:#x})"
        );
    }
}
