//! The telemetry-overhead tripwire (DESIGN.md §13): with the span
//! profiler recording **every** activation and attributing allocations
//! through this binary's counting allocator, the serial month replay
//! must stay within 5% of the profiler-off allocation count. The span
//! layer keeps this true by construction — spans record into
//! preallocated tree nodes and only a site's *first* visit inserts —
//! and this test is the regression gate on that contract.

use quicksand_core::scenario::{Scenario, ScenarioConfig};
use quicksand_obs as obs;
use std::sync::Arc;

/// Counting wrapper over the system allocator, local to this test
/// binary (each integration test is its own process, so the counter
/// sees exactly this file's work).
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: delegates every operation to `System`; the counter is a
    // lock-free atomic, safe in any allocation context.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }
}

#[global_allocator]
static GLOBAL: counting::CountingAlloc = counting::CountingAlloc;

fn probe() -> u64 {
    counting::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Allocations across one serial month replay, measured on a scoped
/// registry so metric bookkeeping is identical run to run.
fn replay_allocs(scenario: &Scenario) -> u64 {
    let registry = Arc::new(obs::Registry::new());
    obs::with_metrics(registry, || {
        let before = probe();
        scenario.run_month().expect("valid scenario");
        probe() - before
    })
}

#[test]
fn profiled_serial_replay_stays_within_five_pct_of_alloc_budget() {
    obs::prof::set_alloc_probe(probe);
    let scenario = Scenario::build(ScenarioConfig::small(0xA110C));

    // Warm every lazy cache (name interning, scratch growth) so the
    // baseline and profiled runs see identical steady state.
    let _warmup = replay_allocs(&scenario);
    let baseline = replay_allocs(&scenario);
    assert!(baseline > 0, "the replay allocates something");

    obs::prof::reset();
    obs::prof::set_sample_every(1);
    obs::prof::set_enabled(true);
    let profiled = replay_allocs(&scenario);
    obs::prof::set_enabled(false);
    let profile = obs::prof::capture();
    obs::prof::reset();

    // The profiler genuinely recorded the hot path, with the counting
    // allocator attributed through the probe.
    assert!(
        profile.entries.iter().any(|e| e.path == "churn.replay"),
        "replay root span missing from the profile"
    );
    assert!(
        profile
            .entries
            .iter()
            .any(|e| e.path.ends_with("collector.diff_session")),
        "collector spans missing from the profile"
    );
    assert!(
        profile.entries.iter().any(|e| e.total_allocs > 0),
        "alloc probe attributed nothing"
    );

    // The tripwire: full-sampling profiling costs at most 5% extra
    // allocations over the same replay.
    let budget = baseline + baseline / 20;
    assert!(
        profiled <= budget,
        "profiled replay blew the allocation budget: baseline {baseline}, \
         profiled {profiled} (cap {budget})"
    );
}
