//! Differential harness for the parallel month-replay engine (DESIGN.md
//! §10): across a grid of seeds × scenario sizes × jobs ∈ {1, 2, 4, 8},
//! the sharded engine must produce a `MonthResult` whose MRT encoding
//! and a normalized `RunReport` whose JSON serialization are **byte
//! identical** to the serial reference — including when the parallel
//! run is interrupted at a checkpoint and resumed at a *different*
//! width (checkpoints carry no execution-width identity).
//!
//! Each run gets its own metrics registry and event buffer, mirroring
//! separate processes; worker shards record into the pool's captured
//! registry, so per-run reports are complete and isolated.

use quicksand_bgp::mrt;
use quicksand_core::parallel::Parallelism;
use quicksand_core::scenario::{MonthResult, Scale, ScaleSpec, Scenario, ScenarioConfig};
use quicksand_net::{QuicksandError, SimDuration};
use quicksand_obs::{self as obs, MemorySubscriber, Registry, RunReport};
use quicksand_recover::{HookAction, PipelineSnapshot};
use std::sync::Arc;

/// MRT-encode an update log: the byte-level identity used to assert
/// "bitwise identical" rather than merely `PartialEq`.
fn log_bytes(log: &quicksand_bgp::UpdateLog) -> Vec<u8> {
    let mut bytes = Vec::new();
    mrt::write_log(log, &mut bytes).expect("writing to a Vec cannot fail");
    bytes
}

fn assert_months_bitwise_identical(a: &MonthResult, b: &MonthResult, context: &str) {
    assert_eq!(
        log_bytes(&a.raw),
        log_bytes(&b.raw),
        "raw logs differ ({context})"
    );
    assert_eq!(
        log_bytes(&a.cleaned),
        log_bytes(&b.cleaned),
        "cleaned logs differ ({context})"
    );
    assert_eq!(a.removed_duplicates, b.removed_duplicates, "{context}");
    assert_eq!(a.reset_bursts, b.reset_bursts, "{context}");
    assert_eq!(a.horizon_end, b.horizon_end, "{context}");
}

/// The grid's fast scenario size: two days and six sessions instead of
/// `small()`'s week and twelve, so seeds × jobs stays cheap. `small()`
/// itself is exercised at the higher widths in a dedicated test.
fn tiny(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed);
    cfg.churn.horizon = SimDuration::from_days(2);
    cfg.collector.horizon = SimDuration::from_days(2);
    cfg.n_sessions = 6;
    cfg.n_control_origins = 20;
    cfg
}

/// Run the month at the given width in an isolated registry, returning
/// the result and the *serialized normalized* run report — the two
/// byte-level identities the harness compares.
fn run_with_jobs(mut cfg: ScenarioConfig, jobs: usize) -> (MonthResult, String) {
    cfg.parallelism = Parallelism::with_jobs(jobs);
    let scenario = Scenario::build(cfg);
    let registry = Arc::new(Registry::new());
    let events = Arc::new(MemorySubscriber::new());
    let month = obs::with_metrics(registry.clone(), || {
        obs::with_subscriber(events.clone(), || {
            scenario.run_month().expect("valid scenario config")
        })
    });
    let report =
        RunReport::assemble("parallel-equivalence", &registry.snapshot(), &events.events());
    let normalized =
        serde_json::to_string(&report.normalized()).expect("report serializes");
    (month, normalized)
}

/// The core differential grid: seeds × jobs ∈ {2, 4, 8} against the
/// jobs = 1 serial reference on the tiny scenario.
#[test]
fn month_replay_is_bitwise_identical_across_jobs_grid() {
    for seed in [0xD1FF_u64, 9] {
        let (base_month, base_report) = run_with_jobs(tiny(seed), 1);
        for jobs in [2usize, 4, 8] {
            let context = format!("seed {seed:#x}, jobs {jobs}");
            let (month, report) = run_with_jobs(tiny(seed), jobs);
            assert_months_bitwise_identical(&base_month, &month, &context);
            assert_eq!(
                base_report, report,
                "normalized run report diverged ({context})"
            );
        }
    }
}

/// The second scenario size: the full `small()` configuration (a week,
/// twelve sessions — enough live sessions and prefixes that collector
/// diffing genuinely shards) at the widths CI smokes.
#[test]
fn small_scenario_is_bitwise_identical_at_higher_widths() {
    let (base_month, base_report) = run_with_jobs(ScenarioConfig::small(0xD1FF), 1);
    for jobs in [4usize, 8] {
        let context = format!("small scenario, jobs {jobs}");
        let (month, report) = run_with_jobs(ScenarioConfig::small(0xD1FF), jobs);
        assert_months_bitwise_identical(&base_month, &month, &context);
        assert_eq!(
            base_report, report,
            "normalized run report diverged ({context})"
        );
    }
}

/// Checkpoint semantics under sharding: interrupt a jobs = 4 run at its
/// second checkpoint, resume the snapshot at jobs = 2, and the result
/// must still be bitwise-identical to the uninterrupted serial run.
/// Works because the checkpoint cursor counts *fully processed events*
/// (sharding never splits an event across a checkpoint boundary) and
/// `Parallelism` is excluded from the config fingerprint.
#[test]
fn checkpointed_parallel_run_resumes_bitwise_identical_across_widths() {
    let (base_month, base_report) = run_with_jobs(tiny(0xCAFE), 1);

    let mut interrupted_cfg = tiny(0xCAFE);
    interrupted_cfg.parallelism = Parallelism::with_jobs(4);
    let interrupted = Scenario::build(interrupted_cfg);
    let mut captured: Option<PipelineSnapshot> = None;
    let mut saves = 0u64;
    let err = obs::with_metrics(Arc::new(Registry::new()), || {
        interrupted
            .run_month_checkpointed(None, 10, |snap| {
                saves += 1;
                captured = Some(snap.clone());
                if saves >= 2 {
                    HookAction::Stop
                } else {
                    HookAction::Continue
                }
            })
            .expect_err("hook requested a stop")
    });
    assert!(
        matches!(err, QuicksandError::Interrupted { events_done: 20 }),
        "unexpected interruption shape: {err}"
    );
    let snap = captured.expect("two checkpoints were captured");

    let mut resume_cfg = tiny(0xCAFE);
    resume_cfg.parallelism = Parallelism::with_jobs(2);
    let resumed = Scenario::build(resume_cfg);
    let registry = Arc::new(Registry::new());
    let events = Arc::new(MemorySubscriber::new());
    let month = obs::with_metrics(registry.clone(), || {
        obs::with_subscriber(events.clone(), || {
            resumed
                .run_month_checkpointed(Some(&snap), 0, |_| HookAction::Continue)
                .expect("a parallel checkpoint resumes at any width")
        })
    });
    let report =
        RunReport::assemble("parallel-equivalence", &registry.snapshot(), &events.events());
    assert_months_bitwise_identical(
        &base_month,
        &month,
        "jobs 4 interrupted, resumed at jobs 2",
    );
    assert_eq!(
        base_report,
        serde_json::to_string(&report.normalized()).expect("report serializes"),
        "normalized run report diverged after cross-width resume"
    );
}

/// The Internet-scale differential gate: the `large` tier (≥20k ASes,
/// ~113k tracked prefixes) at a reduced one-day horizon must be
/// bitwise-identical across jobs ∈ {1, 4, 8}. This is minutes of CPU,
/// so it is `#[ignore]` by default and additionally gated on
/// `QUICKSAND_TEST_LARGE=1` — the CI large-tier job runs it with
/// `--ignored`.
#[test]
#[ignore = "large tier: minutes of CPU; QUICKSAND_TEST_LARGE=1 cargo test -- --ignored"]
fn large_tier_is_bitwise_identical_across_jobs() {
    if std::env::var("QUICKSAND_TEST_LARGE").as_deref() != Ok("1") {
        eprintln!("skipped: set QUICKSAND_TEST_LARGE=1 to run the large differential gate");
        return;
    }
    let cfg = || {
        let spec = ScaleSpec {
            horizon_days: 1,
            ..ScaleSpec::large()
        };
        ScenarioConfig::at_scale(&Scale::Custom(spec), 0xD1FF)
    };
    // The scale floors the tier exists for.
    let probe = Scenario::build(cfg());
    assert!(probe.topo.graph.len() >= 20_000, "large tier lost its AS floor");
    assert!(
        probe.tracked_prefixes().len() >= 100_000,
        "large tier lost its tracked-prefix floor"
    );
    drop(probe);

    let (base_month, base_report) = run_with_jobs(cfg(), 1);
    for jobs in [4usize, 8] {
        let context = format!("large tier, jobs {jobs}");
        let (month, report) = run_with_jobs(cfg(), jobs);
        assert_months_bitwise_identical(&base_month, &month, &context);
        assert_eq!(
            base_report, report,
            "normalized run report diverged ({context})"
        );
    }
}

/// Execution width is not scenario identity: the config fingerprint —
/// and with it checkpoint compatibility — ignores `Parallelism`, while
/// still distinguishing genuinely different scenarios.
#[test]
fn parallelism_is_excluded_from_config_identity() {
    let serial = Scenario::build(tiny(3));
    let mut wide_cfg = tiny(3);
    wide_cfg.parallelism = Parallelism::with_jobs(8);
    let wide = Scenario::build(wide_cfg);
    assert_eq!(serial.config_hash(), wide.config_hash());
    let other = Scenario::build(tiny(4));
    assert_ne!(serial.config_hash(), other.config_hash());
}
