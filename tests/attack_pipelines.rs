//! End-to-end attack pipelines: hijack → anonymity set, interception →
//! live correlation, stealth hijack → detection visibility. These span
//! `quicksand-attack`, `quicksand-tor`, `quicksand-traffic`, and
//! `quicksand-core`.

use quicksand_attack::detect::PrefixMonitor;
use quicksand_attack::hijack::{more_specific_hijack, origin_hijack};
use quicksand_attack::intercept::plan_interception;
use quicksand_attack::{MultiOriginRouting, OriginSpec};
use quicksand_core::scenario::{Scenario, ScenarioConfig};
use quicksand_net::{Asn, SimDuration, SimTime};
use quicksand_traffic::correlate::{match_circuit, CorrelationConfig};
use quicksand_traffic::{Capture, CircuitFlow, CircuitFlowConfig, Segment, TcpConfig};
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::small(777)))
}

/// §3.2: hijacking the top guard's prefix exposes a meaningful share of
/// the client population, and higher-tier attackers capture more.
#[test]
fn hijack_reduces_anonymity_sets() {
    let s = scenario();
    let g = &s.topo.graph;
    let victim = s
        .consensus
        .guards()
        .max_by_key(|r| r.bandwidth_kbs)
        .map(|r| r.host_as)
        .unwrap();
    let stub_attacker = *s.topo.stubs.iter().find(|&&a| a != victim).unwrap();
    let t1_attacker = s.topo.tier1[0];
    let from_stub = origin_hijack(g, victim, stub_attacker);
    let from_t1 = origin_hijack(g, victim, t1_attacker);
    assert!(from_stub.capture_fraction(g) > 0.0);
    assert!(
        from_t1.capture_fraction(g) >= from_stub.capture_fraction(g) * 0.5,
        "tier-1 capture unexpectedly tiny"
    );
    // Victim always keeps its own route; attacker always captures itself.
    assert!(from_stub.retained.contains(&victim));
    assert!(from_stub.captured.contains(&stub_attacker));
}

/// §3.2 + §3.3: interception keeps the flow alive and the asymmetric
/// correlator identifies the victim flow among decoys.
#[test]
fn interception_then_asymmetric_correlation_deanonymizes() {
    let s = scenario();
    let g = &s.topo.graph;
    let victim = s
        .consensus
        .guards()
        .max_by_key(|r| r.bandwidth_kbs)
        .map(|r| r.host_as)
        .unwrap();
    let plan = g
        .asns()
        .filter(|&a| a != victim && g.degree(a) >= 2)
        .find_map(|attacker| plan_interception(g, victim, attacker))
        .expect("some feasible interception");
    // The egress still reaches the victim and bypasses the attacker.
    assert_eq!(plan.egress_path.last(), Some(&victim));

    // The intercepted circuit's traffic.
    let truth = CircuitFlow::simulate(&CircuitFlowConfig {
        first_hop: TcpConfig {
            transfer_bytes: 12 << 20,
            seed: 5,
            ..Default::default()
        },
        ..Default::default()
    });
    // Decoys with different timing.
    let mut candidates: Vec<Capture> = (0..5)
        .map(|k| {
            CircuitFlow::simulate(&CircuitFlowConfig {
                first_hop: TcpConfig {
                    transfer_bytes: (8 + 3 * k as u64) << 20,
                    rate_bytes_per_sec: 1_000_000 + 300_000 * k as u64,
                    seed: 50 + k as u64,
                    ..Default::default()
                },
                ..Default::default()
            })
            .capture(Segment::GuardClient, false)
            .clone()
        })
        .collect();
    candidates.insert(2, truth.capture(Segment::GuardClient, false).clone());
    let refs: Vec<&Capture> = candidates.iter().collect();
    let result = match_circuit(
        truth.capture(Segment::ServerExit, true),
        &refs,
        SimTime::ZERO,
        truth.completed_at + SimDuration::from_secs(2),
        &CorrelationConfig {
            bin: SimDuration::from_millis(300),
            max_lag_bins: 6,
        },
    )
    .unwrap();
    assert_eq!(result.best_index, 2, "correlator picked a decoy");
    assert!(result.best.coefficient > 0.9);
}

/// §3.2/§5: a community-scoped stealth hijack stays invisible to
/// far-away collector peers while an unscoped more-specific is seen by
/// everyone (and flagged by the monitor).
#[test]
fn stealth_hijack_evades_distant_vantage_points() {
    let s = scenario();
    let g = &s.topo.graph;
    let victim = s
        .consensus
        .guards()
        .next()
        .map(|r| r.host_as)
        .unwrap();
    // Pick a stub attacker and a tier-1 vantage that are NOT directly
    // adjacent: a NO_EXPORT-scoped announcement reaches exactly the
    // attacker's neighbors, so "distant" must mean non-adjacent rather
    // than just "some tier-1" (which a stub may well be homed to).
    let (attacker, vantage) = s
        .topo
        .stubs
        .iter()
        .copied()
        .filter(|&a| a != victim && g.degree(a) >= 1)
        .find_map(|a| {
            s.topo
                .tier1
                .iter()
                .copied()
                .find(|&t| g.relationship(a, t).is_none())
                .map(|t| (a, t))
        })
        .expect("a stub attacker with a non-adjacent tier-1 vantage");

    // NO_EXPORT-scoped more-specific: only the attacker's neighbors see
    // it.
    let scoped = more_specific_hijack(
        g,
        victim,
        OriginSpec {
            asn: attacker,
            export_to: None,
            no_reexport: true,
            blocked_edges: Vec::new(),
        },
    );
    let unscoped = more_specific_hijack(g, victim, OriginSpec::plain(attacker));
    assert!(scoped.captured.len() < unscoped.captured.len());
    assert_eq!(unscoped.captured.len(), g.len(), "unscoped reaches all");
    // The distant vantage is captured by the unscoped attack only.
    assert!(unscoped.captured.contains(&vantage));
    assert!(!scoped.captured.contains(&vantage));

    // The monitor flags the visible more-specific instantly.
    let monitor = PrefixMonitor::new(
        s.tor_prefixes
            .origin_by_prefix
            .iter()
            .map(|(p, a)| (*p, *a)),
    );
    // Build a synthetic record of the bogus more-specific as the
    // vantage's collector session would log it.
    let victim_prefix = *s
        .tor_prefixes
        .origin_by_prefix
        .iter()
        .find(|(_, a)| **a == victim)
        .map(|(p, _)| p)
        .unwrap();
    let (lo, _) = victim_prefix.split().expect("splittable prefix");
    let log = quicksand_bgp::UpdateLog {
        records: vec![quicksand_bgp::UpdateRecord {
            at: SimTime::ZERO,
            session: quicksand_bgp::SessionId(0),
            msg: quicksand_bgp::UpdateMessage::Announce(quicksand_bgp::Route {
                prefix: lo,
                as_path: quicksand_net::AsPath::from_asns([Asn(1), attacker]),
                communities: Default::default(),
            }),
        }],
    };
    let alarms = monitor.scan(&log);
    assert_eq!(alarms.len(), 1, "more-specific hijack must be flagged");
}

/// Interception capture sets computed statically match per-AS
/// forwarding choices: every captured AS's path ends at the attacker
/// and every retained AS's at the victim.
#[test]
fn interception_capture_set_is_consistent() {
    let s = scenario();
    let g = &s.topo.graph;
    let victim = s.consensus.exits().next().map(|r| r.host_as).unwrap();
    let Some(plan) = g
        .asns()
        .filter(|&a| a != victim && g.degree(a) >= 2)
        .find_map(|attacker| plan_interception(g, victim, attacker))
    else {
        // Some seeds admit no interception; the other tests cover the
        // feasible case.
        return;
    };
    let routing: &MultiOriginRouting = &plan.outcome.routing;
    for a in g.asns() {
        let path = routing.path_from(g, a);
        match path {
            Some(p) => {
                let last = *p.last().unwrap();
                if plan.outcome.captured.contains(&a) {
                    assert_ne!(last, victim, "captured AS reached the victim");
                } else if plan.outcome.retained.contains(&a) {
                    assert_eq!(last, victim);
                }
            }
            None => assert!(plan.outcome.unrouted.contains(&a)),
        }
    }
}
